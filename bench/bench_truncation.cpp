// E17 — Ablation: bounded preference lists. Peers shortlist only their top-k
// candidates before matching; the sweep shows how much satisfaction and
// traffic shortlist size buys, and that modest k already recovers almost all
// of the full-list quality.
#include "bench/bench_common.hpp"
#include "core/solvers.hpp"
#include "matching/metrics.hpp"
#include "prefs/truncation.hpp"

namespace overmatch {
namespace {

void k_sweep() {
  const std::size_t n = 96;
  const std::uint32_t quota = 3;
  util::Table t({"shortlist k", "mode", "candidate edges", "match msgs",
                 "S vs full-list %", "utilization"});
  // Full-list reference.
  double full_sat = 0.0;
  {
    util::StreamingStats s;
    for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
      auto inst = bench::Instance::make("er", n, 16.0, quota, seed * 11 + 1);
      s.add(core::solve(*inst->profile, core::Algorithm::kLidDes).satisfaction);
    }
    full_sat = s.mean();
  }
  for (const auto mode : {prefs::TruncationMode::kEither,
                          prefs::TruncationMode::kMutual}) {
    for (const std::size_t k : {1u, 2u, 3u, 4u, 6u, 10u}) {
      util::StreamingStats edges;
      util::StreamingStats msgs;
      util::StreamingStats sat;
      util::StreamingStats util_stat;
      for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
        auto inst = bench::Instance::make("er", n, 16.0, quota, seed * 11 + 1);
        static graph::Graph reduced;
        reduced = prefs::truncate_candidates(*inst->profile, k, mode);
        // Rebuild preferences on the reduced neighbourhoods by inheriting the
        // original relative order.
        const auto& orig = *inst->profile;
        auto profile = prefs::PreferenceProfile::from_scores(
            reduced, prefs::uniform_quotas(reduced, quota),
            [&orig](graph::NodeId i, graph::NodeId j) {
              return -static_cast<double>(orig.rank(i, j));
            });
        const auto r = core::solve(profile, core::Algorithm::kLidDes);
        edges.add(static_cast<double>(reduced.num_edges()));
        msgs.add(static_cast<double>(r.messages));
        // Satisfaction must be evaluated against the ORIGINAL lists so the
        // comparison with the full-list run is apples to apples.
        double s = 0.0;
        for (graph::NodeId v = 0; v < n; ++v) {
          s += prefs::satisfaction(orig, v, r.matching.connections(v));
        }
        sat.add(s);
        std::size_t cap = 0;
        std::size_t load = 0;
        for (graph::NodeId v = 0; v < n; ++v) {
          cap += orig.quota(v);
          load += r.matching.load(v);
        }
        util_stat.add(static_cast<double>(load) / static_cast<double>(cap));
      }
      t.row()
          .cell(std::int64_t{static_cast<std::int64_t>(k)})
          .cell(mode == prefs::TruncationMode::kEither ? "either" : "mutual")
          .cell(edges.mean(), 0)
          .cell(msgs.mean(), 0)
          .cell(100.0 * sat.mean() / full_sat, 1)
          .cell(util_stat.mean(), 3);
    }
  }
  t.print("Shortlist-size sweep (ER n=96, avg degree 16, b=3; satisfaction "
          "evaluated on the original full lists):");
}

// The other axis of "do less work": instead of shortening the lists fed in
// (shortlist-k above), cap the protocol itself with the anytime round budget
// (SolveOptions::budget, DESIGN.md §14) and stop mid-run. FIFO schedule so a
// budget-R run is a prefix of the full run.
void rounds_sweep() {
  const std::size_t n = 96;
  const std::uint32_t quota = 3;
  util::Table t({"round budget", "match msgs", "S vs full-run %", "truncated"});
  for (const std::size_t rounds : {1u, 2u, 4u, 8u, 16u, 0u}) {  // 0 = unlimited
    util::StreamingStats msgs;
    util::StreamingStats sat_pct;
    std::size_t truncated_runs = 0;
    for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
      auto inst = bench::Instance::make("er", n, 16.0, quota, seed * 11 + 1);
      core::SolveOptions opt;
      opt.seed = seed;
      opt.schedule = sim::Schedule::kFifo;
      core::SolveOptions ref_opt = opt;
      if (rounds != 0) opt.budget.max_rounds = rounds;
      const auto full =
          core::solve(*inst->profile, core::Algorithm::kLidDes, ref_opt);
      const auto r = core::solve(*inst->profile, core::Algorithm::kLidDes, opt);
      msgs.add(static_cast<double>(r.messages));
      sat_pct.add(100.0 * r.satisfaction / full.satisfaction);
      if (r.truncated) ++truncated_runs;
    }
    t.row()
        .cell(rounds == 0 ? std::string("unlimited") : std::to_string(rounds))
        .cell(msgs.mean(), 0)
        .cell(sat_pct.mean(), 1)
        .cell(std::to_string(truncated_runs) + "/" +
              std::to_string(bench::seeds(5)));
  }
  t.print("Anytime round-budget sweep (ER n=96, avg degree 16, b=3, LID DES "
          "fifo; satisfaction relative to the unbudgeted run):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E17", "Bounded-preference-list ablation",
      "Top-k candidate preselection: quality/traffic vs. shortlist size;\n"
      "plus the anytime round-budget sweep over the same instances.");
  overmatch::k_sweep();
  overmatch::rounds_sweep();
  return 0;
}
