// E12 — Ablation: scheduler adversity. The matching is schedule-invariant
// (Lemmas 3-6); only the *cost profile* moves. This bench quantifies both.
#include "bench/bench_common.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"

namespace overmatch {
namespace {

void scheduler_table() {
  util::Table t({"schedule", "runs", "matchings == LIC", "msgs mean", "msgs p95",
                 "virtual completion time"});
  for (const auto schedule :
       {sim::Schedule::kFifo, sim::Schedule::kRandomOrder, sim::Schedule::kRandomDelay,
        sim::Schedule::kAdversarialDelay}) {
    std::size_t equal = 0;
    std::vector<double> msgs;
    util::StreamingStats vtime;
    const std::size_t runs = bench::seeds(12);
    for (std::uint64_t seed = 1; seed <= runs; ++seed) {
      auto inst = bench::Instance::make("ba", 100, 6.0, 3, 2024);  // fixed instance
      const auto lic = matching::lic_global(*inst->weights, inst->profile->quotas());
      matching::LidOptions opt;
      opt.seed = seed;
      opt.schedule = schedule;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      if (lic.same_edges(r.matching)) ++equal;
      msgs.push_back(static_cast<double>(r.stats.total_sent));
      vtime.add(r.stats.completion_time);
    }
    t.row()
        .cell(sim::schedule_name(schedule))
        .cell(std::uint64_t{runs})
        .cell(std::uint64_t{equal})
        .cell(util::mean_of(msgs), 1)
        .cell(util::percentile(msgs, 95.0), 1)
        .cell(vtime.mean(), 2);
  }
  t.print("Scheduler ablation on one fixed instance (BA n=100, b=3, 12 seeds):");
}

void threaded_repeatability() {
  // Real threads: repeated runs must agree with LIC every time even though
  // the interleaving differs physically between runs.
  auto inst = bench::Instance::make("ba", 100, 6.0, 3, 2024);
  const auto lic = matching::lic_global(*inst->weights, inst->profile->quotas());
  util::Table t({"threads", "runs", "matchings == LIC", "msgs mean"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::size_t equal = 0;
    util::StreamingStats msgs;
    const std::size_t runs = 6;
    matching::LidOptions opt;
    opt.threads = threads;
    opt.runtime = matching::LidRuntime::kThreaded;
    for (std::size_t rep = 0; rep < runs; ++rep) {
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      if (lic.same_edges(r.matching)) ++equal;
      msgs.add(static_cast<double>(r.stats.total_sent));
    }
    t.row()
        .cell(std::int64_t{static_cast<std::int64_t>(threads)})
        .cell(std::uint64_t{runs})
        .cell(std::uint64_t{equal})
        .cell(msgs.mean(), 1);
  }
  t.print("Threaded actor runtime: physical nondeterminism, logical determinism");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E12", "Scheduler-adversity ablation",
      "Outcome invariance and cost spread of LID under hostile schedules.");
  overmatch::scheduler_table();
  overmatch::threaded_repeatability();
  return 0;
}
