// E22 — the epoch-snapshot serving layer under concurrent load
// (DESIGN.md §13).
//
// Four views of overmatch_serve's core promise — readers never block on
// repair:
//  * publish_latency / apply_latency: per-step repair and snapshot-publish
//    wall-clock on a size ladder (the writer-side cost of an epoch).
//  * publish_delta: the same workload with snapshot capture forced to
//    page-sharing delta (kOn) vs full rebuild (kOff) — the delta medians
//    should be near-flat in n at fixed burst (DESIGN.md §15).
//  * reader_query: throughput and latency of R reader threads running the
//    neighbour-list + satisfaction query mix, first against an idle writer
//    (baseline) and then while the writer sustains churn bursts. The
//    acceptance comparison — concurrent within 10% of idle while the writer
//    clears >= 10k events/s — is only meaningful with real cores under the
//    readers; on fewer than 4 hardware threads the multi-reader rows are
//    emitted for the record but the verdict is SKIP (threads timeshare one
//    core, so reader and writer throughput trade off by construction —
//    bench_diff.py also prints an oversubscription warning for such runs).
//  * writer_throughput: events/s the writer sustains with readers attached.
//
// Emits BENCH_serve.json (overmatch-bench-v1, env block with
// hardware_concurrency/threads_max); tools/bench_diff.py compares medians
// against the checked-in baseline and fails on >15% regressions.
#include <algorithm>
#include <atomic>
#include <thread>

#include "bench/bench_common.hpp"
#include "serve/service_loop.hpp"
#include "util/thread_pool.hpp"

namespace overmatch {
namespace {

void publish_latency(bench::JsonReport& report) {
  const std::vector<std::size_t> ladder =
      bench::g_smoke ? std::vector<std::size_t>{400}
                     : std::vector<std::size_t>{10'000, 100'000};
  util::Table t({"n", "burst", "apply med ms", "publish med ms", "epochs"});
  for (const std::size_t n : ladder) {
    auto inst = bench::Instance::make("er", n, 8.0, 3, 42);
    serve::ServeOptions opts;
    opts.churn_batch_mean = 64.0;
    opts.seed = 9;
    serve::ServiceLoop loop(*inst->profile, *inst->weights, opts);
    const std::size_t steps = bench::g_smoke ? 20 : 200;
    std::vector<double> apply_ms, pub_ms;
    apply_ms.reserve(steps);
    pub_ms.reserve(steps);
    for (std::size_t k = 0; k < steps; ++k) {
      const auto st = loop.step();
      apply_ms.push_back(static_cast<double>(st.apply_ns) / 1e6);
      pub_ms.push_back(static_cast<double>(st.publish_ns) / 1e6);
    }
    bench::JsonReport::Params params = {{"topology", "er"},
                                        {"n", std::to_string(n)},
                                        {"burst", "64"}};
    report.add("apply_latency", params, apply_ms);
    report.add("publish_latency", params, pub_ms);
    t.row();
    t.cell(std::to_string(n));
    t.cell("64");
    t.cell(util::percentile(apply_ms, 50.0), 4);
    t.cell(util::percentile(pub_ms, 50.0), 4);
    t.cell(std::to_string(loop.epoch()));
  }
  t.print("per-step repair (apply) and snapshot-publish latency, er deg 8");
}

// The delta-vs-full arms of the same workload (DESIGN.md §15): identical
// instance and burst stream, snapshot capture forced to delta (kOn) or to
// full rebuild (kOff). The acceptance criteria read off this series: the
// delta medians should be near-flat in n at fixed burst (O(touched pages)),
// while the full medians scale with n + m.
void publish_delta(bench::JsonReport& report) {
  const std::vector<std::size_t> ladder =
      bench::g_smoke ? std::vector<std::size_t>{400}
                     : std::vector<std::size_t>{10'000, 100'000};
  util::Table t({"n", "burst", "mode", "publish med ms", "dirty pages med"});
  for (const std::size_t n : ladder) {
    auto inst = bench::Instance::make("er", n, 8.0, 3, 42);
    for (const auto* mode : {"delta", "full"}) {
      serve::ServeOptions opts;
      opts.churn_batch_mean = 64.0;
      opts.seed = 9;
      opts.delta_publish = std::string(mode) == "delta"
                               ? serve::DeltaPublish::kOn
                               : serve::DeltaPublish::kOff;
      serve::ServiceLoop loop(*inst->profile, *inst->weights, opts);
      const std::size_t steps = bench::g_smoke ? 20 : 200;
      std::vector<double> pub_ms, dirty;
      pub_ms.reserve(steps);
      for (std::size_t k = 0; k < steps; ++k) {
        const auto st = loop.step();
        pub_ms.push_back(static_cast<double>(st.publish_ns) / 1e6);
        if (st.delta) dirty.push_back(static_cast<double>(st.dirty_pages));
      }
      report.add("publish_delta",
                 {{"topology", "er"},
                  {"n", std::to_string(n)},
                  {"burst", "64"},
                  {"mode", mode}},
                 pub_ms);
      t.row();
      t.cell(std::to_string(n));
      t.cell("64");
      t.cell(mode);
      t.cell(util::percentile(pub_ms, 50.0), 4);
      t.cell(dirty.empty() ? 0.0 : util::percentile(dirty, 50.0), 0);
    }
  }
  t.print("snapshot publish: O(touched) delta capture vs full rebuild");
}

struct ReaderRun {
  double queries_per_s = 0.0;
  double p99_us = 0.0;
  double writer_events_per_s = 0.0;  ///< 0 for the idle-writer arm
  std::vector<double> batch_ms;      ///< per-1024-query wall-clock
};

/// Runs `readers` query threads against `loop` for `run_ms`, with the
/// writer either idle or applying churn bursts on the calling thread.
ReaderRun run_readers(serve::ServiceLoop& loop, std::size_t readers,
                      double run_ms, bool writer_churn) {
  constexpr std::size_t kBatch = 1024;
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> batches(readers);
  std::vector<std::vector<double>> lat_us(readers);
  std::vector<std::uint64_t> counts(readers, 0);

  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (std::size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&loop, &done, &batches, &lat_us, &counts, t] {
      auto handle = loop.store().register_reader();
      util::Rng rng(0x5eedbeefULL + t);
      double sink = 0.0;
      std::uint64_t ops = 0;
      while (!done.load(std::memory_order_acquire)) {
        util::WallTimer bt;
        for (std::size_t i = 0; i < kBatch; ++i) {
          const bool sample = (ops & 31) == 0;
          util::WallTimer qt;
          {
            serve::SnapshotRef snap = loop.store().acquire(handle);
            const auto v =
                static_cast<graph::NodeId>(rng.index(snap->num_nodes()));
            for (const graph::NodeId u : snap->neighbors(v)) {
              sink += static_cast<double>(u);
            }
            sink += snap->satisfaction(v);
          }
          if (sample) lat_us[t].push_back(qt.millis() * 1e3);
          ++ops;
        }
        batches[t].push_back(bt.millis());
        counts[t] += kBatch;
      }
      if (sink == -1.0) std::puts("");
    });
  }

  std::size_t events = 0;
  util::WallTimer wall;
  if (writer_churn) {
    while (wall.millis() < run_ms) events += loop.step().events;
  } else {
    while (wall.millis() < run_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double writer_ms = wall.millis();
  done.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double total_ms = wall.millis();

  ReaderRun out;
  std::uint64_t queries = 0;
  std::vector<double> all_lat;
  for (std::size_t t = 0; t < readers; ++t) {
    queries += counts[t];
    out.batch_ms.insert(out.batch_ms.end(), batches[t].begin(),
                        batches[t].end());
    all_lat.insert(all_lat.end(), lat_us[t].begin(), lat_us[t].end());
  }
  out.queries_per_s = 1000.0 * static_cast<double>(queries) / total_ms;
  if (!all_lat.empty()) out.p99_us = util::percentile(all_lat, 99.0);
  if (writer_churn) {
    out.writer_events_per_s =
        1000.0 * static_cast<double>(events) / writer_ms;
  }
  return out;
}

void reader_throughput(bench::JsonReport& report) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t n = bench::scaled(20'000, 400);
  const double run_ms = bench::g_smoke ? 300.0 : 2000.0;
  auto inst = bench::Instance::make("er", n, 8.0, 3, 42);

  // Reader ladder: 1 always; multi-reader rows need cores to mean anything
  // but are cheap, so they are emitted whenever not in smoke mode.
  std::vector<std::size_t> ladder = {1};
  if (!bench::g_smoke) ladder.push_back(4);
  if (!bench::g_smoke && hw >= 8) ladder.push_back(8);

  util::Table t({"readers", "writer", "queries/s", "p99 us", "events/s"});
  for (const std::size_t readers : ladder) {
    serve::ServeOptions opts;
    opts.churn_batch_mean = 64.0;
    opts.seed = 7;
    opts.max_readers = readers + 1;
    serve::ServiceLoop loop(*inst->profile, *inst->weights, opts);

    const ReaderRun idle = run_readers(loop, readers, run_ms, false);
    const ReaderRun churn = run_readers(loop, readers, run_ms, true);
    for (const auto* arm : {"idle", "churn"}) {
      const ReaderRun& r = std::string(arm) == "idle" ? idle : churn;
      bench::JsonReport::Params params = {
          {"n", std::to_string(n)},
          {"readers", std::to_string(readers)},
          {"writer", arm},
          {"queries_per_s", std::to_string(r.queries_per_s)},
          {"p99_us", std::to_string(r.p99_us)}};
      if (r.writer_events_per_s > 0.0) {
        params.emplace_back("events_per_s",
                            std::to_string(r.writer_events_per_s));
      }
      report.add("reader_query", params, r.batch_ms, readers);
      t.row();
      t.cell(std::to_string(readers));
      t.cell(arm);
      t.cell(r.queries_per_s, 0);
      t.cell(r.p99_us, 2);
      t.cell(r.writer_events_per_s, 0);
    }

    // The acceptance comparison: concurrent readers within 10% of the idle
    // baseline while the writer clears 10k events/s. Needs the readers and
    // the writer on distinct cores — SKIP (not FAIL) when timesharing.
    const double ratio =
        idle.queries_per_s > 0.0 ? churn.queries_per_s / idle.queries_per_s
                                 : 0.0;
    if (hw < 4) {
      std::printf(
          "readers=%zu: concurrent/idle = %.2f — SKIP verdict "
          "(hardware_concurrency %zu < 4: reader and writer threads "
          "timeshare, the ratio measures scheduling, not interference)\n",
          readers, ratio, hw);
    } else {
      const bool ok =
          ratio >= 0.9 && churn.writer_events_per_s >= 10'000.0;
      std::printf(
          "readers=%zu: concurrent/idle = %.2f, writer %.0f events/s — %s\n",
          readers, ratio, churn.writer_events_per_s,
          ok ? "PASS (within 10%, writer >= 10k events/s)" : "FAIL");
    }
  }
  t.print("reader query mix: idle writer vs concurrent churn writer");
}

void writer_throughput(bench::JsonReport& report) {
  const std::size_t n = bench::scaled(100'000, 400);
  auto inst = bench::Instance::make("er", n, 8.0, 3, 42);
  util::Table t({"arrival", "burst", "events/s", "publishes/s"});
  for (const auto* arrival_name : {"poisson", "flash-crowd"}) {
    serve::ServeOptions opts;
    opts.arrival = *overlay::try_churn_arrival_by_name(arrival_name);
    opts.churn_batch_mean = 256.0;
    opts.seed = 11;
    serve::ServiceLoop loop(*inst->profile, *inst->weights, opts);
    const double run_ms = bench::g_smoke ? 300.0 : 2000.0;
    std::size_t events = 0, steps = 0;
    std::vector<double> step_ms;
    util::WallTimer wall;
    while (wall.millis() < run_ms) {
      util::WallTimer st;
      events += loop.step().events;
      ++steps;
      step_ms.push_back(st.millis());
    }
    const double ms = wall.millis();
    const double events_per_s = 1000.0 * static_cast<double>(events) / ms;
    report.add("writer_throughput",
               {{"n", std::to_string(n)},
                {"arrival", arrival_name},
                {"burst", "256"},
                {"events_per_s", std::to_string(events_per_s)}},
               step_ms);
    t.row();
    t.cell(arrival_name);
    t.cell("256");
    t.cell(events_per_s, 0);
    t.cell(1000.0 * static_cast<double>(steps) / ms, 1);
  }
  t.print("sustained writer throughput with burst ~256 arrivals");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  using namespace overmatch;
  const bench::Env env(argc, argv);
  bench::print_header(
      "E22", "snapshot-service throughput (DESIGN.md §13)",
      "Epoch-snapshot serving: writer publish/apply latency, reader query\n"
      "throughput idle vs. under churn, and sustained writer events/s.");

  bench::JsonReport report("serve");
  report.set_env("hardware_concurrency",
                 std::to_string(std::thread::hardware_concurrency()));
  report.set_env("threads_max",
                 std::to_string(std::thread::hardware_concurrency() >= 8
                                    ? 8
                                    : (env.smoke() ? 1 : 4)));

  std::printf("\n-- publish / apply latency --\n");
  publish_latency(report);
  std::printf("\n-- delta vs full snapshot capture --\n");
  publish_delta(report);
  std::printf("\n-- reader query throughput (idle vs churn writer) --\n");
  reader_throughput(report);
  std::printf("\n-- writer throughput under arrival models --\n");
  writer_throughput(report);
  report.write();
  return 0;
}
