// E13 — Extension: LID over an unreliable network. The paper assumes
// reliable channels; composing every node with the ACK/retransmit adapter
// (sim/reliable.hpp) lifts that assumption. The matching must stay exactly
// the LIC matching at every loss rate; the cost curves quantify the price.
#include "bench/bench_common.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "sim/reliable.hpp"

namespace overmatch {
namespace {

void loss_sweep() {
  util::Table t({"loss %", "runs", "== LIC", "wire msgs", "dropped", "retransmits",
                 "ACKs", "overhead ×", "virtual time"});
  // Baseline cost: lossless LID without the reliability layer.
  double baseline_msgs = 0.0;
  {
    util::StreamingStats base;
    for (std::uint64_t seed = 1; seed <= bench::seeds(6); ++seed) {
      auto inst = bench::Instance::make("er", 80, 8.0, 3, seed * 5 + 1);
      matching::LidOptions opt;
      opt.seed = seed;
      opt.schedule = sim::Schedule::kRandomDelay;
      base.add(static_cast<double>(
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt)
              .stats.total_sent));
    }
    baseline_msgs = base.mean();
  }
  for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.4, 0.6}) {
    std::size_t equal = 0;
    util::StreamingStats msgs;
    util::StreamingStats dropped;
    util::StreamingStats retx;
    util::StreamingStats acks;
    util::StreamingStats vtime;
    const std::size_t runs = bench::seeds(6);
    for (std::uint64_t seed = 1; seed <= runs; ++seed) {
      auto inst = bench::Instance::make("er", 80, 8.0, 3, seed * 5 + 1);
      const auto lic = matching::lic_global(*inst->weights, inst->profile->quotas());
      matching::LidOptions opt;
      opt.seed = seed;
      opt.loss_rate = loss;
      opt.reliable = true;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      if (lic.same_edges(r.matching)) ++equal;
      msgs.add(static_cast<double>(r.stats.total_sent));
      dropped.add(static_cast<double>(r.stats.total_dropped));
      retx.add(static_cast<double>(r.retransmissions));
      acks.add(static_cast<double>(r.stats.kind_count(sim::kAckKind)));
      vtime.add(r.stats.completion_time);
    }
    t.row()
        .cell(100.0 * loss, 0)
        .cell(std::uint64_t{runs})
        .cell(std::uint64_t{equal})
        .cell(msgs.mean(), 0)
        .cell(dropped.mean(), 0)
        .cell(retx.mean(), 0)
        .cell(acks.mean(), 0)
        .cell(msgs.mean() / baseline_msgs, 2)
        .cell(vtime.mean(), 1);
  }
  t.print("LID + reliable delivery vs. message-loss rate (ER n=80, b=3, 6 seeds):");
  std::printf("baseline (no reliability layer, lossless): %.0f messages\n",
              baseline_msgs);
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E13", "Unreliable-channel extension",
      "Outcome invariance and retransmission cost of LID under message loss.");
  overmatch::loss_sweep();
  return 0;
}
