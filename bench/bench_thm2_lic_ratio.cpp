// E3 — Theorem 2: LIC/LID reach at least ½ of the optimal many-to-many
// maximum weighted matching.
//
// Exact optima come from the branch & bound solver, so instances are kept
// small (n ≤ 18). For every row the minimum observed ratio across seeds must
// stay ≥ 0.5; typical ratios are far higher — greedy's worst case needs
// adversarial weight patterns that random preference instances rarely hit.
#include "bench/bench_common.hpp"
#include "matching/exact.hpp"
#include "matching/lic.hpp"

namespace overmatch {
namespace {

void ratio_table() {
  util::Table t({"topology", "n", "b", "seeds", "min ratio", "mean ratio",
                 "bound", "mean |OPT| explored"});
  for (const char* topology : {"er", "ba", "geo", "complete"}) {
    for (const std::uint32_t b : {1u, 2u, 3u}) {
      const std::size_t n = topology == std::string("complete") ? 10 : 16;
      util::StreamingStats ratios;
      util::StreamingStats explored;
      for (std::uint64_t seed = 1; seed <= bench::seeds(15); ++seed) {
        auto inst = bench::Instance::make_mixed_quotas(topology, n, 4.0, b,
                                                       seed * 13 + b);
        const auto greedy = matching::lic_global(*inst->weights,
                                                 inst->profile->quotas());
        matching::ExactInfo info;
        const auto opt = matching::exact_max_weight_bmatching(
            *inst->weights, inst->profile->quotas(), &info);
        const double ow = opt.total_weight(*inst->weights);
        if (ow <= 0) continue;
        ratios.add(greedy.total_weight(*inst->weights) / ow);
        explored.add(static_cast<double>(info.nodes_explored));
      }
      t.row()
          .cell(topology)
          .cell(std::int64_t{static_cast<std::int64_t>(n)})
          .cell(std::int64_t{b})
          .cell(std::uint64_t{ratios.count()})
          .cell(ratios.min(), 4)
          .cell(ratios.mean(), 4)
          .cell(0.5, 4)
          .cell(explored.mean(), 0);
    }
  }
  t.print("LIC weight vs. exact optimum (b column = max quota; quotas mixed in [1,b]):");
}

void adversarial_path_table() {
  // The tight family for greedy: a path with weights w−ε, w, w−ε. Greedy
  // takes the middle edge; OPT takes both sides → ratio → ½ as ε → 0.
  util::Table t({"epsilon", "greedy weight", "opt weight", "ratio"});
  for (const double eps : {0.5, 0.2, 0.1, 0.01, 0.001}) {
    graph::GraphBuilder b(4);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    static graph::Graph g;
    g = std::move(b).build();
    const prefs::EdgeWeights w(
        g, std::vector<double>{1.0 - eps, 1.0, 1.0 - eps});
    const auto greedy = matching::lic_global(w, prefs::Quotas(4, 1));
    const auto opt = matching::exact_max_weight_bmatching(w, prefs::Quotas(4, 1));
    const double gw = greedy.total_weight(w);
    const double ow = opt.total_weight(w);
    t.row().cell(eps, 4).cell(gw, 4).cell(ow, 4).cell(gw / ow, 4);
  }
  t.print("Adversarial path family: the ratio approaches the tight 1/2 bound");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E3", "Theorem 2",
      "LIC is a 1/2-approximation of the many-to-many maximum weighted matching.");
  overmatch::ratio_table();
  overmatch::adversarial_path_table();
  return 0;
}
