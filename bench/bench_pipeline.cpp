// bench_pipeline — E18: the parallel construction pipeline, phase by phase.
//
// Times every stage of instance construction — graph finalize, preference
// profile build, weight-array fill, weight key sort, CSR incidence fill —
// plus the frontier matcher, over a thread ladder. The t=1 rows run the
// sequential reference path (no pool); t>1 rows run the parallel path on a
// caller-owned ThreadPool. Before any timing, the parallel product at every
// thread count is checked byte-identical to the sequential reference, so the
// numbers below always describe builds that produce the same artifact.
//
// Emits BENCH_pipeline.json (schema overmatch-bench-v1); compare runs with
// tools/bench_diff.py.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "matching/lic.hpp"
#include "matching/parallel_local.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace overmatch;

/// Deterministic, thread-safe score: a splitmix-style hash of (i, j) so
/// from_scores exercises the parallel rank sorts on irregular lists without
/// touching any shared Rng state.
double hash_score(graph::NodeId i, graph::NodeId j) {
  std::uint64_t x = (static_cast<std::uint64_t>(i) << 32) | j;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Rebuilds the graph from its edge list (the timed part is build()).
graph::Graph rebuild(const graph::Graph& g, util::ThreadPool* pool) {
  graph::GraphBuilder b(g.num_nodes());
  for (const auto& e : g.edges()) b.add_edge(e.u, e.v);
  return std::move(b).build(pool);
}

bool same_weights(const prefs::EdgeWeights& a, const prefs::EdgeWeights& b) {
  if (a.values() != b.values() || a.keys() != b.keys()) return false;
  if (!std::equal(a.by_weight().begin(), a.by_weight().end(),
                  b.by_weight().begin(), b.by_weight().end())) {
    return false;
  }
  for (graph::NodeId v = 0; v < a.graph().num_nodes(); ++v) {
    const auto ia = a.incident(v);
    const auto ib = b.incident(v);
    if (!std::equal(ia.begin(), ia.end(), ib.begin(), ib.end())) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace overmatch;
  bench::Env env(argc, argv);
  bench::print_header("E18", "construction pipeline scaling",
                      "Per-phase build times (graph finalize, profile, weight "
                      "fill, key sort, CSR fill) and the frontier matcher "
                      "over a thread ladder; t=1 is the sequential path.");

  const std::size_t n = env.flags().get_int("n", static_cast<int>(env.smoke() ? 2000 : 250000));
  const double degree = env.flags().get_double("degree", 8.0);
  const auto quota =
      static_cast<std::uint32_t>(env.flags().get_int("quota", 3));
  const auto seed = static_cast<std::uint64_t>(env.flags().get_int("seed", 12345));
  const std::size_t reps = env.smoke() ? 2 : 5;
  const std::vector<std::size_t> ladder =
      env.smoke() ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

  util::Rng rng(seed);
  const auto g = graph::by_name("er", n, degree, rng);
  const auto quotas = prefs::uniform_quotas(g, quota);
  const auto profile = prefs::PreferenceProfile::random(g, quotas, rng);
  std::printf("instance: er n=%zu m=%zu quota=%u seed=%llu, reps=%zu\n\n", n,
              g.num_edges(), quota, static_cast<unsigned long long>(seed), reps);

  // Sequential reference artifacts for the untimed equality gate.
  const auto ref_weights = prefs::paper_weights(profile);
  const auto ref_matching = matching::lic_global(ref_weights, quotas);

  bench::JsonReport report("pipeline");
  report.set_env("threads_max", std::to_string(ladder.back()));
  report.set_env("hardware_concurrency",
                 std::to_string(std::thread::hardware_concurrency()));
  util::Table table({"threads", "graph ms", "profile ms", "wfill ms", "sort ms",
                     "csr ms", "weights ms", "solve ms"});

  for (const std::size_t t : ladder) {
    // t=1 is the pool-free sequential reference path — exactly what library
    // callers get by default — so speedups are measured against the real
    // baseline, not a one-worker pool.
    std::unique_ptr<util::ThreadPool> owned =
        t > 1 ? std::make_unique<util::ThreadPool>(t) : nullptr;
    util::ThreadPool* pool = owned.get();

    // Untimed determinism gate: the parallel build must reproduce the
    // sequential artifacts exactly before its timings count for anything.
    {
      const auto pg = rebuild(g, pool);
      OM_CHECK_MSG(pg.edges() == g.edges(), "graph rebuild must preserve edges");
      const auto pw = prefs::paper_weights(profile, pool);
      OM_CHECK_MSG(same_weights(pw, ref_weights),
                   "parallel weights must equal the sequential reference");
      util::ThreadPool solve_pool(t);
      const auto pm = matching::parallel_local_dominant(pw, quotas, solve_pool);
      OM_CHECK_MSG(pm.same_edges(ref_matching),
                   "frontier matcher must match lic-global");
    }

    const auto graph_ms =
        bench::timed_samples(reps, [&] { (void)rebuild(g, pool); });
    const auto profile_ms = bench::timed_samples(reps, [&] {
      (void)prefs::PreferenceProfile::from_scores(g, quotas, hash_score, pool);
    });
    const auto wfill_ms = bench::timed_samples(reps, [&] {
      (void)prefs::paper_weight_values(profile, pool);
    });

    // One weights build per rep, split into stages via WeightsBuildStats.
    std::vector<double> weights_ms, sort_ms, key_ms, csr_ms;
    for (std::size_t r = 0; r < reps; ++r) {
      prefs::WeightsBuildStats stats;
      util::WallTimer timer;
      const auto w = prefs::paper_weights(profile, pool, &stats);
      weights_ms.push_back(timer.millis());
      sort_ms.push_back(stats.sort_ms);
      key_ms.push_back(stats.key_ms);
      csr_ms.push_back(stats.csr_ms);
    }

    // The matcher always runs on a pool (t workers) so the ladder isolates
    // its scaling from construction.
    util::ThreadPool solve_pool(t);
    const auto solve_ms = bench::timed_samples(reps, [&] {
      (void)matching::parallel_local_dominant(ref_weights, quotas, solve_pool);
    });

    const bench::JsonReport::Params params = {
        {"topology", "er"},
        {"n", std::to_string(n)},
        {"m", std::to_string(g.num_edges())},
        {"quota", std::to_string(quota)},
        {"seed", std::to_string(seed)}};
    report.add("graph_finalize", params, graph_ms, t);
    report.add("profile_build", params, profile_ms, t);
    report.add("weight_fill", params, wfill_ms, t);
    report.add("key_sort", params, sort_ms, t);
    report.add("key_fill", params, key_ms, t);
    report.add("csr_fill", params, csr_ms, t);
    report.add("weights_build", params, weights_ms, t);
    report.add("solve", params, solve_ms, t);

    table.row()
        .cell(static_cast<std::uint64_t>(t))
        .cell(util::percentile(graph_ms, 50.0), 2)
        .cell(util::percentile(profile_ms, 50.0), 2)
        .cell(util::percentile(wfill_ms, 50.0), 2)
        .cell(util::percentile(sort_ms, 50.0), 2)
        .cell(util::percentile(csr_ms, 50.0), 2)
        .cell(util::percentile(weights_ms, 50.0), 2)
        .cell(util::percentile(solve_ms, 50.0), 2);
  }
  table.print("median per-phase milliseconds by thread count");
  report.write();
  return 0;
}
