// E14 — Capacity efficiency: how many of the possible connections does the
// locally-heaviest matching realize, compared to the exact maximum computed
// by Edmonds' blossom algorithm over the Tutte–Gabow gadget reduction?
//
// The weight-greedy optimizes quality, not quantity; the gap to the
// cardinality optimum is the price of preferring good connections. Maximal
// matchings guarantee ≥ ½ of the optimum cardinality; measured values sit
// far higher.
#include "bench/bench_common.hpp"
#include "matching/cardinality.hpp"
#include "matching/lic.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch {
namespace {

void efficiency_table() {
  util::Table t({"topology", "n", "b", "greedy edges", "max possible", "efficiency",
                 "Σb/2 cap"});
  for (const char* topology : {"er", "ba", "geo", "grid"}) {
    for (const std::uint32_t b : {1u, 2u, 3u}) {
      util::StreamingStats greedy_sz;
      util::StreamingStats best_sz;
      util::StreamingStats eff;
      util::StreamingStats cap;
      for (std::uint64_t seed = 1; seed <= bench::seeds(6); ++seed) {
        auto inst = bench::Instance::make(topology, 64, 5.0, b, seed * 83 + b);
        const auto greedy = matching::lic_global(*inst->weights,
                                                 inst->profile->quotas());
        const auto best =
            matching::max_cardinality_bmatching(inst->g, inst->profile->quotas());
        greedy_sz.add(static_cast<double>(greedy.size()));
        best_sz.add(static_cast<double>(best));
        if (best > 0) {
          eff.add(static_cast<double>(greedy.size()) / static_cast<double>(best));
        }
        std::size_t q = 0;
        for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
          q += inst->profile->quota(v);
        }
        cap.add(static_cast<double>(q) / 2.0);
      }
      t.row()
          .cell(topology)
          .cell(std::int64_t{64})
          .cell(std::int64_t{b})
          .cell(greedy_sz.mean(), 1)
          .cell(best_sz.mean(), 1)
          .cell(eff.mean(), 4)
          .cell(cap.mean(), 1);
    }
  }
  t.print("Connections realized: weight-greedy (= LID) vs. exact cardinality optimum");
}

void quality_quantity_tradeoff() {
  // Same instance, two extremes: maximize weight (LID) vs. maximize count
  // (cardinality OPT ignores preferences entirely — we approximate its
  // satisfaction by unit-weight greedy, a maximum-cardinality-oriented pick).
  util::Table t({"objective", "edges", "total satisfaction"});
  auto inst = bench::Instance::make("ba", 64, 5.0, 2, 4242);
  const auto by_weight = matching::lic_global(*inst->weights,
                                              inst->profile->quotas());
  const prefs::EdgeWeights unit(inst->g,
                                std::vector<double>(inst->g.num_edges(), 1.0));
  const auto by_count = matching::lic_global(unit, inst->profile->quotas());
  const auto sat = [&](const matching::Matching& m) {
    double s = 0.0;
    for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
      s += prefs::satisfaction(*inst->profile, v, m.connections(v));
    }
    return s;
  };
  t.row().cell("maximize weight (LID)").cell(std::uint64_t{by_weight.size()})
      .cell(sat(by_weight), 4);
  t.row().cell("preference-blind greedy (unit weights)")
      .cell(std::uint64_t{by_count.size()})
      .cell(sat(by_count), 4);
  std::printf("cardinality optimum: %zu edges\n",
              matching::max_cardinality_bmatching(inst->g, inst->profile->quotas()));
  t.print("Quality vs. quantity on one BA instance (n=64, b=2, seed 4242):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E14", "Capacity-efficiency extension",
      "Greedy/LID connection count vs. the exact maximum-cardinality b-matching "
      "(blossom + gadget reduction).");
  overmatch::efficiency_table();
  overmatch::quality_quantity_tradeoff();
  return 0;
}
