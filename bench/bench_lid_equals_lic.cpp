// E5 — Lemmas 3, 4, 6: LID selects exactly the edges LIC selects, under every
// schedule, topology, quota mix and runtime.
//
// Each row aggregates several seeds; "equal" counts instances where the edge
// sets were identical (must equal "runs"). The parallel shared-memory engine
// and the threaded actor runtime are included — five independent executions
// of the same greedy rule.
#include "bench/bench_common.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/parallel_local.hpp"

namespace overmatch {
namespace {

void equivalence_table() {
  util::Table t({"topology", "n", "b_max", "schedule", "runs", "equal",
                 "mean weight", "mean msgs"});
  const sim::Schedule schedules[] = {
      sim::Schedule::kFifo, sim::Schedule::kRandomOrder, sim::Schedule::kRandomDelay,
      sim::Schedule::kAdversarialDelay};
  for (const char* topology : {"er", "ba", "ws", "geo"}) {
    for (const std::uint32_t b : {2u, 4u}) {
      for (const auto schedule : schedules) {
        std::size_t equal = 0;
        util::StreamingStats weight;
        util::StreamingStats msgs;
        const std::size_t runs = bench::seeds(8);
        for (std::uint64_t seed = 1; seed <= runs; ++seed) {
          auto inst = bench::Instance::make_mixed_quotas(topology, 60, 6.0, b,
                                                         seed * 31 + b);
          const auto lic = matching::lic_global(*inst->weights,
                                                inst->profile->quotas());
          matching::LidOptions opt;
          opt.seed = seed;
          opt.schedule = schedule;
          const auto lid =
              matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
          if (lic.same_edges(lid.matching)) ++equal;
          weight.add(lid.matching.total_weight(*inst->weights));
          msgs.add(static_cast<double>(lid.stats.total_sent));
        }
        t.row()
            .cell(topology)
            .cell(std::int64_t{60})
            .cell(std::int64_t{b})
            .cell(sim::schedule_name(schedule))
            .cell(std::uint64_t{runs})
            .cell(std::uint64_t{equal})
            .cell(weight.mean(), 4)
            .cell(msgs.mean(), 1);
      }
    }
  }
  t.print("LID (event-driven) vs. LIC (centralized): identical edge sets required");
}

void engine_family_table() {
  util::Table t({"engine", "runs", "equal to LIC", "notes"});
  const std::size_t runs = bench::seeds(10);
  std::size_t eq_local = 0;
  std::size_t eq_parallel = 0;
  std::size_t eq_threaded = 0;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    auto inst = bench::Instance::make_mixed_quotas("er", 80, 8.0, 4, seed * 97);
    const auto lic = matching::lic_global(*inst->weights, inst->profile->quotas());
    if (lic.same_edges(
            matching::lic_local(*inst->weights, inst->profile->quotas(), seed))) {
      ++eq_local;
    }
    if (lic.same_edges(matching::parallel_local_dominant(
            *inst->weights, inst->profile->quotas(), 4))) {
      ++eq_parallel;
    }
    matching::LidOptions thr_opt;
    thr_opt.threads = 4;
    thr_opt.runtime = matching::LidRuntime::kThreaded;
    if (lic.same_edges(
            matching::run_lid(*inst->weights, inst->profile->quotas(), thr_opt)
                .matching)) {
      ++eq_threaded;
    }
  }
  t.row().cell("lic-local (arbitrary scan)").cell(std::uint64_t{runs})
      .cell(std::uint64_t{eq_local}).cell("Lemma 6: selection order irrelevant");
  t.row().cell("parallel local-dominance").cell(std::uint64_t{runs})
      .cell(std::uint64_t{eq_parallel}).cell("shared-memory rounds");
  t.row().cell("LID on OS threads").cell(std::uint64_t{runs})
      .cell(std::uint64_t{eq_threaded}).cell("true concurrency, MPSC mailboxes");
  t.print("Engine family on n=80 instances (mixed quotas up to 4):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E5", "Lemmas 3, 4, 6",
      "Distributed, centralized, parallel and threaded engines pick the same "
      "locally-heaviest edges.");
  overmatch::equivalence_table();
  overmatch::engine_family_table();
  return 0;
}
