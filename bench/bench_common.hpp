// Shared helpers for the experiment benches (E1–E12 in DESIGN.md).
//
// Every bench prints a header naming the experiment and the paper artifact it
// regenerates, then one or more markdown tables. All randomness is seeded and
// the seeds are printed, so each row is independently reproducible.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "graph/generators.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace overmatch::bench {

/// A fully-owned random instance (graph + preferences + eq.-9 weights).
struct Instance {
  graph::Graph g;
  std::unique_ptr<prefs::PreferenceProfile> profile;
  std::unique_ptr<prefs::EdgeWeights> weights;

  static std::unique_ptr<Instance> make(const std::string& topology, std::size_t n,
                                        double avg_degree, std::uint32_t quota,
                                        std::uint64_t seed) {
    auto inst = std::make_unique<Instance>();
    util::Rng rng(seed);
    inst->g = graph::by_name(topology, n, avg_degree, rng);
    inst->profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(inst->g,
                                         prefs::uniform_quotas(inst->g, quota), rng));
    inst->weights =
        std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*inst->profile));
    return inst;
  }

  static std::unique_ptr<Instance> make_mixed_quotas(const std::string& topology,
                                                     std::size_t n, double avg_degree,
                                                     std::uint32_t quota_max,
                                                     std::uint64_t seed) {
    auto inst = std::make_unique<Instance>();
    util::Rng rng(seed);
    inst->g = graph::by_name(topology, n, avg_degree, rng);
    inst->profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(
            inst->g, prefs::random_quotas(inst->g, quota_max, rng), rng));
    inst->weights =
        std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*inst->profile));
    return inst;
  }
};

inline void print_header(const char* experiment_id, const char* paper_artifact,
                         const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n%s\n", experiment_id, paper_artifact, description);
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

}  // namespace overmatch::bench
