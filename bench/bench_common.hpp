// Shared helpers for the experiment benches (E1–E12 in DESIGN.md).
//
// Every bench prints a header naming the experiment and the paper artifact it
// regenerates, then one or more markdown tables. All randomness is seeded and
// the seeds are printed, so each row is independently reproducible.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace overmatch::bench {

/// Process-wide smoke flag, set by Env's constructor. Series helpers below
/// read it so bench table functions don't need an Env threaded through.
inline bool g_smoke = false;

/// Seed-count knob: the full count normally, the reduced one under --smoke.
inline std::size_t seeds(std::size_t full, std::size_t reduced = 2) {
  return g_smoke ? std::min(full, reduced) : full;
}
/// Size knob: full normally, `reduced` under --smoke.
inline std::size_t scaled(std::size_t full, std::size_t reduced) {
  return g_smoke ? reduced : full;
}
/// Keep a series point? Smoke mode drops points above the cap.
inline bool keep(std::size_t n, std::size_t smoke_cap = 128) {
  return !g_smoke || n <= smoke_cap;
}

/// Shared bench runtime knobs. Every bench main constructs one from argv:
/// `--smoke` shrinks all series to a seconds-scale sanity run — that mode is
/// what the `bench-smoke` ctest label executes, so every bench binary keeps
/// compiling and running under tier-1 `ctest` instead of bit-rotting.
class Env {
 public:
  Env(int argc, const char* const* argv)
      : flags_(argc, argv), smoke_(flags_.get_bool("smoke", false)) {
    g_smoke = smoke_;
  }

  [[nodiscard]] bool smoke() const noexcept { return smoke_; }
  [[nodiscard]] const util::Flags& flags() const noexcept { return flags_; }

  /// Series knobs: the full value normally, the reduced one under --smoke.
  [[nodiscard]] std::size_t seeds(std::size_t full, std::size_t reduced = 2) const {
    return smoke_ ? std::min(full, reduced) : full;
  }
  [[nodiscard]] std::size_t size(std::size_t full, std::size_t reduced = 64) const {
    return smoke_ ? std::min(full, reduced) : full;
  }
  /// Keep a series point? Smoke mode drops points above the cap.
  [[nodiscard]] bool keep(std::size_t n, std::size_t smoke_cap = 128) const {
    return !smoke_ || n <= smoke_cap;
  }

 private:
  util::Flags flags_;
  bool smoke_;
};

/// Machine-readable bench output: one BENCH_<name>.json per bench binary,
/// schema "overmatch-bench-v1" (documented in EXPERIMENTS.md). Each record
/// carries the series name, free-form string params, sample count, median and
/// p90 wall-clock milliseconds, and the thread count. Records with no timing
/// samples (pure counters) store the value under params and -1 for the
/// percentiles.
class JsonReport {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  /// Record a host/run property (e.g. hardware_concurrency) into a top-level
  /// "env" object. Kept out of per-record params so record keys stay
  /// comparable across machines — bench_diff.py prints env differences
  /// instead of treating every record as new.
  void set_env(std::string key, std::string value) {
    env_.emplace_back(std::move(key), std::move(value));
  }

  /// Record a timed series point. `samples_ms` holds per-repetition
  /// wall-clock milliseconds.
  void add(std::string name, Params params, std::vector<double> samples_ms,
           std::size_t threads = 1) {
    Record r;
    r.name = std::move(name);
    r.params = std::move(params);
    r.samples = samples_ms.size();
    r.median_ms = samples_ms.empty() ? -1.0 : util::percentile(samples_ms, 50.0);
    r.p90_ms = samples_ms.empty() ? -1.0 : util::percentile(samples_ms, 90.0);
    r.threads = threads;
    records_.push_back(std::move(r));
  }

  /// Write BENCH_<bench>.json into the current directory.
  void write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    OM_CHECK_MSG(f != nullptr, "cannot open bench json for writing");
    std::fprintf(f, "{\n  \"schema\": \"overmatch-bench-v1\",\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", bench_.c_str());
    if (!env_.empty()) {
      std::fprintf(f, "  \"env\": {");
      for (std::size_t i = 0; i < env_.size(); ++i) {
        std::fprintf(f, "%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                     env_[i].first.c_str(), env_[i].second.c_str());
      }
      std::fprintf(f, "},\n");
    }
    std::fprintf(f, "  \"records\": [");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const auto& r = records_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"params\": {",
                   i == 0 ? "" : ",", r.name.c_str());
      for (std::size_t p = 0; p < r.params.size(); ++p) {
        std::fprintf(f, "%s\"%s\": \"%s\"", p == 0 ? "" : ", ",
                     r.params[p].first.c_str(), r.params[p].second.c_str());
      }
      std::fprintf(f,
                   "}, \"samples\": %zu, \"median_ms\": %.4f, \"p90_ms\": %.4f, "
                   "\"threads\": %zu}",
                   r.samples, r.median_ms, r.p90_ms, r.threads);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  struct Record {
    std::string name;
    Params params;
    std::size_t samples = 0;
    double median_ms = -1.0;
    double p90_ms = -1.0;
    std::size_t threads = 1;
  };
  std::string bench_;
  Params env_;
  std::vector<Record> records_;
};

/// Run `fn` `reps` times, returning per-repetition wall-clock milliseconds.
template <typename F>
[[nodiscard]] std::vector<double> timed_samples(std::size_t reps, F&& fn) {
  std::vector<double> xs;
  xs.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    util::WallTimer t;
    fn();
    xs.push_back(t.millis());
  }
  return xs;
}

/// A fully-owned random instance (graph + preferences + eq.-9 weights).
struct Instance {
  graph::Graph g;
  std::unique_ptr<prefs::PreferenceProfile> profile;
  std::unique_ptr<prefs::EdgeWeights> weights;

  static std::unique_ptr<Instance> make(const std::string& topology, std::size_t n,
                                        double avg_degree, std::uint32_t quota,
                                        std::uint64_t seed) {
    auto inst = std::make_unique<Instance>();
    util::Rng rng(seed);
    inst->g = graph::by_name(topology, n, avg_degree, rng);
    inst->profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(inst->g,
                                         prefs::uniform_quotas(inst->g, quota), rng));
    inst->weights =
        std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*inst->profile));
    return inst;
  }

  static std::unique_ptr<Instance> make_mixed_quotas(const std::string& topology,
                                                     std::size_t n, double avg_degree,
                                                     std::uint32_t quota_max,
                                                     std::uint64_t seed) {
    auto inst = std::make_unique<Instance>();
    util::Rng rng(seed);
    inst->g = graph::by_name(topology, n, avg_degree, rng);
    inst->profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(
            inst->g, prefs::random_quotas(inst->g, quota_max, rng), rng));
    inst->weights =
        std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*inst->profile));
    return inst;
  }
};

inline void print_header(const char* experiment_id, const char* paper_artifact,
                         const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n%s\n", experiment_id, paper_artifact, description);
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

}  // namespace overmatch::bench
