// E7 — Scalability: wall-clock of every engine vs. instance size
// (google-benchmark). Absolute numbers are machine-specific; the shape to
// reproduce is near-linear O(m log m) growth for the greedy family and the
// simulator overhead factor of LID-DES over LIC.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "matching/exact.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/parallel_local.hpp"

namespace overmatch {
namespace {

std::unique_ptr<bench::Instance> instance_for(std::size_t n) {
  return bench::Instance::make("er", n, 8.0, 3, 12345 + n);
}

void BM_LicGlobal(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = matching::lic_global(*inst->weights, inst->profile->quotas());
    benchmark::DoNotOptimize(m.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LicGlobal)->Range(128, 4096)->Complexity(benchmark::oNLogN);

void BM_LicLocal(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = matching::lic_local(*inst->weights, inst->profile->quotas(), 1);
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_LicLocal)->Range(128, 2048);

void BM_LidDes(benchmark::State& state) {
  const auto inst = instance_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = matching::run_lid(*inst->weights, inst->profile->quotas(),
                               sim::Schedule::kRandomOrder, 1);
    benchmark::DoNotOptimize(r.matching.size());
  }
}
BENCHMARK(BM_LidDes)->Range(128, 2048);

// Threads sweep at a fixed instance: reports deliveries/sec so the speedup of
// the sharded runtime over worker counts is directly measurable.
void BM_LidThreaded(benchmark::State& state) {
  const auto inst = instance_for(4096);
  std::size_t delivered = 0;
  for (auto _ : state) {
    auto r = matching::run_lid_threaded(*inst->weights, inst->profile->quotas(),
                                        static_cast<std::size_t>(state.range(0)));
    delivered += r.stats.total_delivered;
    benchmark::DoNotOptimize(r.matching.size());
  }
  state.counters["deliveries/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LidThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->UseRealTime();

// Lossy LID on the threaded path (reliable adapter + real-time retransmit
// timers): wire traffic includes ACKs and retransmissions.
void BM_LidLossyThreaded(benchmark::State& state) {
  const auto inst = instance_for(1024);
  std::size_t delivered = 0;
  for (auto _ : state) {
    auto r = matching::run_lid_lossy_threaded(
        *inst->weights, inst->profile->quotas(), /*loss=*/0.2, /*seed=*/3,
        static_cast<std::size_t>(state.range(0)));
    delivered += r.stats.total_delivered;
    benchmark::DoNotOptimize(r.matching.size());
  }
  state.counters["deliveries/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LidLossyThreaded)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

void BM_ParallelLocal(benchmark::State& state) {
  const auto inst = instance_for(2048);
  for (auto _ : state) {
    auto m = matching::parallel_local_dominant(*inst->weights,
                                               inst->profile->quotas(),
                                               static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_ParallelLocal)->Arg(1)->Arg(2)->Arg(4);

void BM_ExactBnB(benchmark::State& state) {
  const auto inst = bench::Instance::make(
      "er", static_cast<std::size_t>(state.range(0)), 4.0, 2, 777);
  for (auto _ : state) {
    auto m = matching::exact_max_weight_bmatching(*inst->weights,
                                                  inst->profile->quotas());
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_ExactBnB)->DenseRange(10, 18, 4);

void BM_WeightConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  static graph::Graph g;
  g = graph::by_name("er", n, 8.0, rng);
  const auto profile =
      prefs::PreferenceProfile::random(g, prefs::uniform_quotas(g, 3), rng);
  for (auto _ : state) {
    auto w = prefs::paper_weights(profile);
    benchmark::DoNotOptimize(w.values().size());
  }
}
BENCHMARK(BM_WeightConstruction)->Range(256, 4096);

}  // namespace
}  // namespace overmatch

BENCHMARK_MAIN();
