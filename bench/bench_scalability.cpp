// E7 — Scalability: wall-clock of every matching engine at overlay scale.
//
// The headline series runs every greedy engine on one ~10^6-edge ER instance
// (the scale the fast-matching-core work targets) and a threads sweep for
// both parallel engines; a size ladder shows the near-linear O(m log m)
// growth shape. All engines are asserted to produce the *identical* matching
// on the big instance — the unique-total-order equivalence, checked at scale.
//
// Emits BENCH_scalability.json (schema overmatch-bench-v1, see
// EXPERIMENTS.md) with a top-level "env" block recording threads_max and the
// host's hardware_concurrency, so cross-machine diffs stay interpretable.
// Flags:
//   --n=N         headline instance size (default 250000 ≈ 10^6 edges)
//   --big-n=N     big-rung instance size (default 2500000 ≈ 10^7 edges;
//                 0 disables; always skipped under --smoke)
//   --reps=R      repetitions per timing (default 5)
//   --threads=T   max threads in the sweeps (default 8)
//   --smoke       tiny sizes for the bench-smoke ctest label
#include <thread>

#include "bench/bench_common.hpp"
#include "matching/bsuitor.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/parallel_bsuitor.hpp"
#include "matching/parallel_local.hpp"
#include "util/thread_pool.hpp"

namespace overmatch {
namespace {

struct Row {
  std::string name;
  std::size_t threads;
  std::vector<double> ms;
};

void run(bench::Env& env) {
  bench::JsonReport json("scalability");
  const std::size_t n =
      static_cast<std::size_t>(env.flags().get_int("n", env.smoke() ? 2000 : 250000));
  const std::size_t reps =
      static_cast<std::size_t>(env.flags().get_int("reps", env.smoke() ? 2 : 5));
  const std::size_t max_threads =
      static_cast<std::size_t>(env.flags().get_int("threads", 8));
  json.set_env("threads_max", std::to_string(max_threads));
  json.set_env("hardware_concurrency",
               std::to_string(std::thread::hardware_concurrency()));

  std::printf("building headline instance (er, n=%zu, avg degree 8, b=3)...\n", n);
  const auto inst = bench::Instance::make("er", n, 8.0, 3, 12345);
  const auto& q = inst->profile->quotas();
  const std::size_t m_edges = inst->g.num_edges();
  std::printf("n=%zu m=%zu\n\n", inst->g.num_nodes(), m_edges);
  const bench::JsonReport::Params base = {
      {"topology", "er"},
      {"n", std::to_string(inst->g.num_nodes())},
      {"m", std::to_string(m_edges)},
      {"quota", "3"}};

  std::vector<Row> rows;
  const auto reference = matching::lic_global(*inst->weights, q);
  const auto time_engine = [&](const std::string& name, std::size_t threads,
                               auto&& engine) {
    // Verify outside the timed region: the equality sweep is harness cost,
    // not engine cost.
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t i = 0; i < reps; ++i) {
      util::WallTimer timer;
      const auto m = engine();
      samples.push_back(timer.millis());
      OM_CHECK_MSG(m.same_edges(reference),
                   "all engines must produce the identical matching");
    }
    json.add(name, base, samples, threads);
    rows.push_back({name, threads, samples});
  };

  time_engine("lic_global", 1,
              [&] { return matching::lic_global(*inst->weights, q); });
  time_engine("lic_local", 1,
              [&] { return matching::lic_local(*inst->weights, q, 1); });
  time_engine("b_suitor", 1, [&] { return matching::b_suitor(*inst->weights, q); });
  for (std::size_t t = 1; t <= max_threads; t *= 2) {
    time_engine("parallel_b_suitor", t,
                [&] { return matching::parallel_b_suitor(*inst->weights, q, t); });
  }
  // Pool-backed ladder: the same engine through a pre-warmed util::ThreadPool
  // (the SolveOptions::pool path), separating thread-startup cost from the
  // engine's own scaling.
  for (std::size_t t = 2; t <= max_threads; t *= 2) {
    util::ThreadPool pool(t - 1);  // pool + calling thread = t workers
    time_engine("parallel_b_suitor_pool", t, [&] {
      return matching::parallel_b_suitor(*inst->weights, q, pool);
    });
  }
  for (std::size_t t = 1; t <= max_threads; t *= 2) {
    time_engine("parallel_local_dominant", t, [&] {
      return matching::parallel_local_dominant(*inst->weights, q, t);
    });
  }

  // Weight construction (includes the one-off key sort + incidence CSR that
  // the per-run numbers above no longer pay).
  {
    auto samples = bench::timed_samples(reps, [&] {
      const auto w = prefs::paper_weights(*inst->profile);
      if (w.values().empty() && m_edges != 0) std::abort();
    });
    json.add("weights_build", base, samples, 1);
    rows.push_back({"weights_build", 1, samples});
  }

  util::Table t({"engine", "threads", "median ms", "p90 ms", "edges/s (median)"});
  for (const auto& r : rows) {
    const double med = util::percentile(r.ms, 50.0);
    t.row()
        .cell(r.name)
        .cell(static_cast<std::int64_t>(r.threads))
        .cell(med, 1)
        .cell(util::percentile(r.ms, 90.0), 1)
        .cell(med > 0 ? static_cast<double>(m_edges) / (med / 1e3) : 0.0, 0);
  }
  t.print("Engine wall-clock at the headline instance:");

  // Size ladder (shape check: near-linear in m for the greedy family).
  {
    util::Table ladder({"n", "m", "lic_global ms", "lic_local ms", "b_suitor ms"});
    for (const std::size_t ln : {4096u, 16384u, 65536u}) {
      if (!env.keep(ln, 4096)) continue;
      if (ln >= n) continue;
      const auto li = bench::Instance::make("er", ln, 8.0, 3, 12345 + ln);
      const auto& lq = li->profile->quotas();
      const auto t_global = bench::timed_samples(
          reps, [&] { (void)matching::lic_global(*li->weights, lq).size(); });
      const auto t_local = bench::timed_samples(
          reps, [&] { (void)matching::lic_local(*li->weights, lq, 1).size(); });
      const auto t_suitor = bench::timed_samples(
          reps, [&] { (void)matching::b_suitor(*li->weights, lq).size(); });
      const bench::JsonReport::Params params = {
          {"topology", "er"},
          {"n", std::to_string(li->g.num_nodes())},
          {"m", std::to_string(li->g.num_edges())},
          {"quota", "3"}};
      json.add("ladder_lic_global", params, t_global, 1);
      json.add("ladder_lic_local", params, t_local, 1);
      json.add("ladder_b_suitor", params, t_suitor, 1);
      ladder.row()
          .cell(static_cast<std::int64_t>(ln))
          .cell(static_cast<std::int64_t>(li->g.num_edges()))
          .cell(util::percentile(t_global, 50.0), 1)
          .cell(util::percentile(t_local, 50.0), 1)
          .cell(util::percentile(t_suitor, 50.0), 1);
    }
    ladder.print("Size ladder (medians):");
  }

  // Big rung: thread ladder at m ≈ 10^7 (an order past the headline), where
  // the working set is far out of LLC and the block scheduler's locality is
  // the artifact. Reduced reps — each run is seconds — and bit-identity
  // checked against sequential b_suitor.
  const std::size_t big_n = env.smoke()
                                ? 0
                                : static_cast<std::size_t>(
                                      env.flags().get_int("big-n", 2500000));
  if (big_n != 0) {
    std::printf("building big rung instance (er, n=%zu, avg degree 8, b=3)...\n",
                big_n);
    const auto big = bench::Instance::make("er", big_n, 8.0, 3, 424242);
    const auto& bq = big->profile->quotas();
    std::printf("n=%zu m=%zu\n", big->g.num_nodes(), big->g.num_edges());
    const bench::JsonReport::Params big_params = {
        {"topology", "er"},
        {"n", std::to_string(big->g.num_nodes())},
        {"m", std::to_string(big->g.num_edges())},
        {"quota", "3"}};
    const std::size_t big_reps = std::min<std::size_t>(reps, 2);
    const auto big_ref = matching::b_suitor(*big->weights, bq);
    util::Table bt({"engine", "threads", "median ms", "edges/s (median)"});
    for (std::size_t t = 1; t <= max_threads; t *= 2) {
      std::vector<double> samples;
      samples.reserve(big_reps);
      for (std::size_t i = 0; i < big_reps; ++i) {
        util::WallTimer timer;
        const auto m = matching::parallel_b_suitor(*big->weights, bq, t);
        samples.push_back(timer.millis());
        OM_CHECK_MSG(m.same_edges(big_ref),
                     "parallel engine must match sequential at 10^7 edges");
      }
      json.add("big_parallel_b_suitor", big_params, samples, t);
      const double med = util::percentile(samples, 50.0);
      bt.row()
          .cell("parallel_b_suitor")
          .cell(static_cast<std::int64_t>(t))
          .cell(med, 1)
          .cell(med > 0 ? static_cast<double>(big->g.num_edges()) / (med / 1e3)
                        : 0.0,
                0);
    }
    bt.print("Big rung (m ~ 10^7) thread ladder:");
  }

  // LID over the discrete-event simulator — kept small: the simulator
  // overhead factor over LIC is the artifact, not raw scale.
  {
    const std::size_t lid_n = env.smoke() ? 256 : 2048;
    const auto li = bench::Instance::make("er", lid_n, 8.0, 3, 777);
    matching::LidOptions lid_opt;
    lid_opt.seed = 1;
    auto samples = bench::timed_samples(env.smoke() ? 1 : 3, [&] {
      (void)matching::run_lid(*li->weights, li->profile->quotas(), lid_opt)
          .matching.size();
    });
    json.add("lid_des",
             {{"topology", "er"},
              {"n", std::to_string(li->g.num_nodes())},
              {"m", std::to_string(li->g.num_edges())},
              {"quota", "3"}},
             samples, 1);
    std::printf("lid_des (n=%zu): median %.1f ms\n\n", lid_n,
                util::percentile(samples, 50.0));
  }

  json.write();
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  overmatch::bench::Env env(argc, argv);
  overmatch::bench::print_header(
      "E7", "Scalability — fast matching core wall-clock",
      "All engines at ~10^6 edges, threads sweeps, size ladder; emits "
      "BENCH_scalability.json.");
  overmatch::run(env);
  return 0;
}
