// E20/E21 — dynamic rematching under churn (DESIGN.md §10, §12).
//
// E20 headline: per-event repair latency of the stateful DynamicBSuitor
// engine (--churn-mode=incremental) vs. from-scratch recomputation, across
// topologies and a size ladder up to n = 10^5. Both engines maintain the
// *same* matching (the greedy fixed point of the alive subgraph), so the
// comparison is pure latency, not quality. Also keeps E11's quality-flavored
// views: a per-event trajectory with the oracle comparator on, and burst
// leave/rejoin recovery.
//
// E21 headline: sustained events/s of batched repair (apply_batch —
// coalescing + frontier-parallel cascades) on an n = 10^6 overlay under the
// ChurnTraffic arrival models (Poisson and flash-crowd), against the
// per-event incremental baseline on the same traffic. The multi-thread rows
// appear only on machines with >= 4 hardware threads (same gate as
// test_parallel_bsuitor_speedup; the reference container is single-core).
//
// Emits BENCH_churn.json (overmatch-bench-v1) with one `event_repair` record
// per (topology, n, mode) and one `batch_throughput` record per (arrival,
// burst, threads) plus the per-event baseline; tools/bench_diff.py compares
// medians against the checked-in baseline and fails on >15% regressions.
#include <thread>

#include "bench/bench_common.hpp"
#include "overlay/churn.hpp"
#include "util/thread_pool.hpp"

namespace overmatch {
namespace {

/// Replays `events` random leave/join events (leaves while few are offline,
/// ~50/50 once some are) and returns per-event repair wall-clock in ms.
std::vector<double> run_events(overlay::ChurnSimulator& churn, std::size_t n,
                               std::size_t events, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<graph::NodeId> offline;
  std::vector<double> ms;
  ms.reserve(events);
  for (std::size_t k = 0; k < events; ++k) {
    overlay::ChurnEvent ev;
    if (!offline.empty() && rng.chance(0.5)) {
      const auto idx = rng.index(offline.size());
      ev = churn.join(offline[idx]);
      offline.erase(offline.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      graph::NodeId v;
      do {
        v = static_cast<graph::NodeId>(rng.index(n));
      } while (!churn.alive(v));
      ev = churn.leave(v);
      offline.push_back(v);
    }
    ms.push_back(static_cast<double>(ev.repair_ns) / 1e6);
  }
  return ms;
}

void per_event_latency(bench::JsonReport& report) {
  const std::vector<std::size_t> ladder =
      bench::g_smoke ? std::vector<std::size_t>{400}
                     : std::vector<std::size_t>{1000, 10000, 100000};
  const std::size_t incr_events = bench::scaled(256, 32);

  util::Table t({"topology", "n", "incr median us", "incr p90 us", "incr events/s",
                 "scratch median us", "scratch events/s", "speedup (median)"});
  for (const char* topology : {"er", "ba", "ws"}) {
    for (const std::size_t n : ladder) {
      auto inst = bench::Instance::make(topology, n, 8.0, 3, 20000 + n);
      // Same instance, two engines: latency is the only thing that differs.
      overlay::ChurnOptions incr_opt;
      incr_opt.mode = overlay::ChurnMode::kIncremental;
      overlay::ChurnSimulator incr(*inst->profile, *inst->weights, incr_opt);
      auto incr_ms = run_events(incr, n, incr_events, 7);

      // From-scratch pays O(m) per event — fewer events suffice for a stable
      // median and keep the large-n rows affordable.
      const std::size_t scratch_events =
          std::max<std::size_t>(8, incr_events / (n >= 100000 ? 16 : 4));
      overlay::ChurnOptions scr_opt;
      scr_opt.mode = overlay::ChurnMode::kScratch;
      overlay::ChurnSimulator scratch(*inst->profile, *inst->weights, scr_opt);
      auto scratch_ms = run_events(scratch, n, scratch_events, 7);

      const double im = util::percentile(incr_ms, 50.0);
      const double ip90 = util::percentile(incr_ms, 90.0);
      const double sm = util::percentile(scratch_ms, 50.0);
      t.row()
          .cell(topology)
          .cell(std::uint64_t{n})
          .cell(im * 1e3, 2)
          .cell(ip90 * 1e3, 2)
          .cell(im > 0 ? 1e3 / im : 0.0, 0)
          .cell(sm * 1e3, 2)
          .cell(sm > 0 ? 1e3 / sm : 0.0, 0)
          .cell(im > 0 ? sm / im : 0.0, 1);

      report.add("event_repair",
                 {{"topology", topology},
                  {"n", std::to_string(n)},
                  {"mode", "incremental"}},
                 std::move(incr_ms));
      report.add("event_repair",
                 {{"topology", topology},
                  {"n", std::to_string(n)},
                  {"mode", "scratch"}},
                 std::move(scratch_ms));
    }
  }
  t.print(
      "Per-event repair latency, incremental vs from-scratch (quota 3, avg "
      "degree 8;\nidentical matchings — acceptance target: speedup ≥ 10× at "
      "n = 100000):");
}

/// E21: one batched-churn session — draws bursts from `traffic` until
/// `total_events` raw events have been applied through sim.apply_batch, and
/// returns (per-burst repair ms, events applied, events coalesced away).
struct BatchRun {
  std::vector<double> burst_ms;
  std::size_t events = 0;
  std::size_t coalesced = 0;
  double wall_ms = 0.0;
};

BatchRun run_batched(overlay::ChurnSimulator& churn,
                     overlay::ChurnTraffic& traffic, std::size_t total_events) {
  BatchRun out;
  util::WallTimer w;
  while (out.events < total_events) {
    const auto burst = traffic.next_burst();
    const auto rep = churn.apply_batch(burst);
    out.events += rep.events;
    out.coalesced += rep.coalesced;
    out.burst_ms.push_back(static_cast<double>(rep.repair_ns) / 1e6);
  }
  out.wall_ms = w.millis();
  return out;
}

void batch_throughput(bench::JsonReport& report) {
  const std::size_t n = bench::scaled(std::size_t{1000000}, std::size_t{2000});
  const std::size_t total_events = bench::scaled(20000, 1500);
  auto inst = bench::Instance::make("ba", n, 8.0, 3, 4242);

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_cols{1};
  if (hw >= 4) thread_cols.push_back(4);

  util::Table t({"arrival", "burst", "threads", "events", "coalesced",
                 "events/s", "burst p50 us", "burst p90 us"});

  // Per-event baseline: identical Poisson(64) traffic, every event applied
  // through the per-event incremental path. This is the denominator of the
  // batching speedup claim.
  {
    overlay::ChurnSimulator churn(*inst->profile, *inst->weights, {});
    overlay::ChurnTraffic traffic(n, overlay::ChurnArrival::kPoisson, 64.0, 99);
    std::size_t events = 0;
    std::vector<double> burst_ms;
    util::WallTimer w;
    while (events < total_events) {
      util::WallTimer bt;
      for (const auto& ev : traffic.next_burst()) {
        if (ev.kind == matching::ChurnEvent::Kind::kJoin) {
          churn.join(ev.u);
        } else {
          churn.leave(ev.u);
        }
        ++events;
      }
      burst_ms.push_back(bt.millis());
    }
    const double wall = w.millis();
    const double eps = 1000.0 * static_cast<double>(events) / wall;
    t.row()
        .cell("per-event")
        .cell(std::uint64_t{64})
        .cell(std::uint64_t{1})
        .cell(std::uint64_t{events})
        .cell(std::uint64_t{0})
        .cell(eps, 0)
        .cell(util::percentile(burst_ms, 50.0) * 1e3, 1)
        .cell(util::percentile(burst_ms, 90.0) * 1e3, 1);
    report.add("batch_throughput",
               {{"arrival", "per-event"},
                {"burst", "64"},
                {"n", std::to_string(n)},
                {"events", std::to_string(events)},
                {"events_per_s", std::to_string(static_cast<std::size_t>(eps))}},
               std::move(burst_ms), 1);
  }

  for (const auto arrival :
       {overlay::ChurnArrival::kPoisson, overlay::ChurnArrival::kFlashCrowd}) {
    for (const std::size_t burst : {std::size_t{64}, std::size_t{256}}) {
      for (const std::size_t threads : thread_cols) {
        // threads-1 pool workers + the caller, matching parallel_b_suitor.
        std::unique_ptr<util::ThreadPool> pool =
            threads > 1 ? std::make_unique<util::ThreadPool>(threads - 1)
                        : nullptr;
        overlay::ChurnOptions opt;
        opt.pool = pool.get();
        overlay::ChurnSimulator churn(*inst->profile, *inst->weights, opt);
        overlay::ChurnTraffic traffic(n, arrival, static_cast<double>(burst),
                                      99);
        auto run = run_batched(churn, traffic, total_events);
        const double eps =
            1000.0 * static_cast<double>(run.events) / run.wall_ms;
        t.row()
            .cell(overlay::churn_arrival_name(arrival))
            .cell(std::uint64_t{burst})
            .cell(std::uint64_t{threads})
            .cell(std::uint64_t{run.events})
            .cell(std::uint64_t{run.coalesced})
            .cell(eps, 0)
            .cell(util::percentile(run.burst_ms, 50.0) * 1e3, 1)
            .cell(util::percentile(run.burst_ms, 90.0) * 1e3, 1);
        report.add(
            "batch_throughput",
            {{"arrival", overlay::churn_arrival_name(arrival)},
             {"burst", std::to_string(burst)},
             {"n", std::to_string(n)},
             {"events", std::to_string(run.events)},
             {"events_per_s",
              std::to_string(static_cast<std::size_t>(eps))}},
            std::move(run.burst_ms), threads);
      }
    }
  }
  t.print(
      "Batched churn throughput, apply_batch vs per-event (BA n as recorded, "
      "b=3;\nsame traffic seed — acceptance target: batched+parallel >= 5x "
      "per-event\nat burst >= 64 on 4 threads):");
}

void churn_trajectory() {
  // Oracle on: every row shows the from-scratch weight next to the
  // incremental one. The gap is 0 by Theorem 2's unique fixed point — the
  // engine *is* at the from-scratch matching after every event.
  auto inst = bench::Instance::make("er", 120, 8.0, 3, 31337);
  overlay::ChurnOptions opt;
  opt.oracle = true;
  overlay::ChurnSimulator churn(*inst->profile, *inst->weights, opt);
  util::Rng rng(1);

  const double w0 = churn.matching().total_weight(*inst->weights);
  const double s0 = churn.total_satisfaction_alive();
  std::printf("initial: weight %.4f, total satisfaction %.4f, edges %zu\n\n", w0, s0,
              churn.matching().size());

  util::Table t({"event", "node", "removed", "added", "incr weight", "scratch weight",
                 "gap %", "disruption", "alive satisfaction", "repair us"});
  std::vector<graph::NodeId> offline;
  const int steps = static_cast<int>(bench::scaled(24, 6));
  for (int step = 1; step <= steps; ++step) {
    overlay::ChurnEvent ev;
    if (!offline.empty() && rng.chance(0.45)) {
      const auto idx = rng.index(offline.size());
      ev = churn.join(offline[idx]);
      offline.erase(offline.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      graph::NodeId v;
      do {
        v = static_cast<graph::NodeId>(rng.index(inst->g.num_nodes()));
      } while (!churn.alive(v));
      ev = churn.leave(v);
      offline.push_back(v);
    }
    const double gap =
        100.0 * (ev.recompute_weight - ev.incremental_weight) / ev.recompute_weight;
    t.row()
        .cell(ev.join ? "join" : "leave")
        .cell(std::int64_t{ev.node})
        .cell(std::uint64_t{ev.edges_removed})
        .cell(std::uint64_t{ev.edges_added})
        .cell(ev.incremental_weight, 4)
        .cell(ev.recompute_weight, 4)
        .cell(gap, 2)
        .cell(std::uint64_t{ev.disruption})
        .cell(ev.satisfaction_total, 3)
        .cell(static_cast<double>(ev.repair_ns) / 1e3, 1);
  }
  t.print(
      "Churn trajectory with per-event oracle (ER n=120, b=3; incremental "
      "repair):");
}

void burst_recovery() {
  // Take 25% of the network down at once, then bring it back; how fast does
  // quality recover and how much reconnection work is done?
  auto inst = bench::Instance::make("ba", 120, 8.0, 3, 997);
  overlay::ChurnSimulator churn(*inst->profile, *inst->weights);
  util::Rng rng(2);
  const double w0 = churn.matching().total_weight(*inst->weights);

  const auto victims = rng.sample_indices(inst->g.num_nodes(), 30);
  std::size_t removed = 0;
  std::size_t added_during_leave = 0;
  for (const auto v : victims) {
    const auto ev = churn.leave(static_cast<graph::NodeId>(v));
    removed += ev.edges_removed;
    added_during_leave += ev.edges_added;
  }
  const double w_down = churn.matching().total_weight(*inst->weights);
  std::size_t added_back = 0;
  for (const auto v : victims) {
    added_back += churn.join(static_cast<graph::NodeId>(v)).edges_added;
  }
  const double w_up = churn.matching().total_weight(*inst->weights);

  util::Table t({"phase", "weight", "% of initial", "edges torn", "edges added"});
  t.row().cell("initial").cell(w0, 4).cell(100.0, 1).cell(std::uint64_t{0})
      .cell(std::uint64_t{0});
  t.row().cell("after 25% leave").cell(w_down, 4).cell(100.0 * w_down / w0, 1)
      .cell(std::uint64_t{removed}).cell(std::uint64_t{added_during_leave});
  t.row().cell("after rejoin").cell(w_up, 4).cell(100.0 * w_up / w0, 1)
      .cell(std::uint64_t{0}).cell(std::uint64_t{added_back});
  t.print("Burst churn (BA n=120, b=3, 30 nodes leave then rejoin):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E20/E21", "Dynamic rematching under churn (paper §7 future work)",
      "Localized b-suitor repair per churn event vs. from-scratch "
      "recomputation,\nplus batched frontier-parallel repair throughput "
      "(apply_batch).");
  overmatch::bench::JsonReport report("churn");
  report.set_env("threads_max",
                 std::to_string(std::thread::hardware_concurrency() >= 4 ? 4 : 1));
  report.set_env("hardware_concurrency",
                 std::to_string(std::thread::hardware_concurrency()));
  overmatch::per_event_latency(report);
  overmatch::batch_throughput(report);
  overmatch::churn_trajectory();
  overmatch::burst_recovery();
  report.write();
  return 0;
}
