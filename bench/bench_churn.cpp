// E11 — Extension (paper future work): joins/leaves. Incremental greedy
// repair vs. from-scratch recomputation: satisfaction trajectory, connection
// disruption, and the weight premium recomputation would buy.
#include "bench/bench_common.hpp"
#include "overlay/churn.hpp"

namespace overmatch {
namespace {

void churn_trajectory() {
  auto inst = bench::Instance::make("er", 120, 8.0, 3, 31337);
  overlay::ChurnSimulator churn(*inst->profile, *inst->weights);
  util::Rng rng(1);

  const double w0 = churn.matching().total_weight(*inst->weights);
  const double s0 = churn.total_satisfaction_alive();
  std::printf("initial: weight %.4f, total satisfaction %.4f, edges %zu\n\n", w0, s0,
              churn.matching().size());

  util::Table t({"event", "node", "removed", "added", "incr weight", "scratch weight",
                 "gap %", "disruption", "alive satisfaction"});
  std::vector<graph::NodeId> offline;
  const int steps = static_cast<int>(bench::scaled(24, 6));
  for (int step = 1; step <= steps; ++step) {
    overlay::ChurnEvent ev;
    if (!offline.empty() && rng.chance(0.45)) {
      const auto idx = rng.index(offline.size());
      ev = churn.join(offline[idx]);
      offline.erase(offline.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      graph::NodeId v;
      do {
        v = static_cast<graph::NodeId>(rng.index(inst->g.num_nodes()));
      } while (!churn.alive(v));
      ev = churn.leave(v);
      offline.push_back(v);
    }
    const double gap =
        100.0 * (ev.recompute_weight - ev.incremental_weight) / ev.recompute_weight;
    t.row()
        .cell(ev.join ? "join" : "leave")
        .cell(std::int64_t{ev.node})
        .cell(std::uint64_t{ev.edges_removed})
        .cell(std::uint64_t{ev.edges_added})
        .cell(ev.incremental_weight, 4)
        .cell(ev.recompute_weight, 4)
        .cell(gap, 2)
        .cell(std::uint64_t{ev.disruption})
        .cell(ev.satisfaction_total, 3);
  }
  t.print("Churn trajectory (ER n=120, b=3; 24 random leave/join events):");
}

void burst_recovery() {
  // Take 25% of the network down at once, then bring it back; how fast does
  // quality recover and how much reconnection work is done?
  auto inst = bench::Instance::make("ba", 120, 8.0, 3, 997);
  overlay::ChurnSimulator churn(*inst->profile, *inst->weights);
  util::Rng rng(2);
  const double w0 = churn.matching().total_weight(*inst->weights);

  const auto victims = rng.sample_indices(inst->g.num_nodes(), 30);
  std::size_t removed = 0;
  std::size_t added_during_leave = 0;
  for (const auto v : victims) {
    const auto ev = churn.leave(static_cast<graph::NodeId>(v));
    removed += ev.edges_removed;
    added_during_leave += ev.edges_added;
  }
  const double w_down = churn.matching().total_weight(*inst->weights);
  std::size_t added_back = 0;
  for (const auto v : victims) {
    added_back += churn.join(static_cast<graph::NodeId>(v)).edges_added;
  }
  const double w_up = churn.matching().total_weight(*inst->weights);

  util::Table t({"phase", "weight", "% of initial", "edges torn", "edges added"});
  t.row().cell("initial").cell(w0, 4).cell(100.0, 1).cell(std::uint64_t{0})
      .cell(std::uint64_t{0});
  t.row().cell("after 25% leave").cell(w_down, 4).cell(100.0 * w_down / w0, 1)
      .cell(std::uint64_t{removed}).cell(std::uint64_t{added_during_leave});
  t.row().cell("after rejoin").cell(w_up, 4).cell(100.0 * w_up / w0, 1)
      .cell(std::uint64_t{0}).cell(std::uint64_t{added_back});
  t.print("Burst churn (BA n=120, b=3, 30 nodes leave then rejoin):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E11", "Dynamicity extension (paper §7 future work)",
      "Incremental repair under churn vs. from-scratch recomputation.");
  overmatch::churn_trajectory();
  overmatch::burst_recovery();
  return 0;
}
