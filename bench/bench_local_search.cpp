// E15 — Ablation: satisfaction post-processing. The modified objective that
// makes LID distributed drops the dynamic satisfaction term; a centralized
// local-search pass on the true objective quantifies what that shortcut
// leaves behind — and how much of the remaining gap to the exact optimum a
// cheap hill climb recovers (exact optima only on tiny instances).
#include "bench/bench_common.hpp"
#include "matching/exact.hpp"
#include "matching/lic.hpp"
#include "matching/local_search.hpp"
#include "matching/metrics.hpp"

namespace overmatch {
namespace {

void tiny_with_exact() {
  util::Table t({"seeds", "S(LID)/S*", "S(LID+ls)/S*", "gap closed %", "swaps/run"});
  util::StreamingStats before_ratio;
  util::StreamingStats after_ratio;
  util::StreamingStats closed;
  util::StreamingStats swaps;
  const std::size_t seeds = bench::seeds(15);
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    auto inst = bench::Instance::make_mixed_quotas("er", 10, 3.0, 3, seed * 101 + 7);
    auto m = matching::lic_global(*inst->weights, inst->profile->quotas());
    const auto opt = matching::exact_max_satisfaction(*inst->profile);
    const double best = matching::total_satisfaction(*inst->profile, opt);
    if (best <= 0) continue;
    const double s0 = matching::total_satisfaction(*inst->profile, m);
    const auto info = matching::improve_satisfaction(*inst->profile, m);
    const double s1 = info.satisfaction_after;
    before_ratio.add(s0 / best);
    after_ratio.add(s1 / best);
    if (best - s0 > 1e-9) closed.add(100.0 * (s1 - s0) / (best - s0));
    swaps.add(static_cast<double>(info.swaps));
  }
  t.row()
      .cell(std::uint64_t{before_ratio.count()})
      .cell(before_ratio.mean(), 4)
      .cell(after_ratio.mean(), 4)
      .cell(closed.mean(), 1)
      .cell(swaps.mean(), 1);
  t.print("Tiny instances (n=10, exact optimum available):");
}

void larger_without_exact() {
  util::Table t({"topology", "n", "b", "S before", "S after", "improvement %",
                 "swaps", "adds"});
  for (const char* topology : {"er", "ba", "geo"}) {
    util::StreamingStats s0;
    util::StreamingStats s1;
    util::StreamingStats swaps;
    util::StreamingStats adds;
    for (std::uint64_t seed = 1; seed <= bench::seeds(6); ++seed) {
      auto inst = bench::Instance::make_mixed_quotas(topology, 96, 8.0, 4,
                                                     seed * 103 + 9);
      auto m = matching::lic_global(*inst->weights, inst->profile->quotas());
      const auto info = matching::improve_satisfaction(*inst->profile, m);
      s0.add(info.satisfaction_before);
      s1.add(info.satisfaction_after);
      swaps.add(static_cast<double>(info.swaps));
      adds.add(static_cast<double>(info.adds));
    }
    t.row()
        .cell(topology)
        .cell(std::int64_t{96})
        .cell(std::int64_t{4})
        .cell(s0.mean(), 4)
        .cell(s1.mean(), 4)
        .cell(100.0 * (s1.mean() - s0.mean()) / s0.mean(), 2)
        .cell(swaps.mean(), 1)
        .cell(adds.mean(), 1);
  }
  t.print("Larger instances (exact optimum infeasible; absolute improvement):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E15", "Post-processing ablation",
      "True-objective local search on top of the LID matching.");
  overmatch::tiny_with_exact();
  overmatch::larger_without_exact();
  return 0;
}
