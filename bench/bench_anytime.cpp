// E23 — Anytime quality vs. round budget (DESIGN.md §14). Sweeps
// SolveOptions::budget.max_rounds for the two budget-honoring engine
// families — LID (DES runtime, FIFO schedule so a budget-R run is a prefix
// of the full run) and sequential b-suitor — across er/ba/ws topologies,
// reporting how fast Σ S_i and the matched-weight approximation ratio climb
// toward the unbudgeted fixed point and how the blocking-edge count (the
// distance-from-convergence gauge) decays. Emits BENCH_anytime.json
// ("anytime_quality" series) for the bench_diff.py self-diff gate.
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/solvers.hpp"
#include "matching/verify.hpp"

namespace overmatch {
namespace {

struct AlgoArm {
  const char* name;
  core::Algorithm algo;
};

void rounds_sweep(bench::JsonReport& report) {
  const std::size_t n = bench::scaled(384, 96);
  const double degree = 12.0;
  const std::uint32_t quota = 3;
  const std::vector<std::size_t> rounds =
      bench::g_smoke ? std::vector<std::size_t>{1, 4, 16}
                     : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  const AlgoArm arms[] = {{"lid", core::Algorithm::kLidDes},
                          {"bsuitor", core::Algorithm::kBSuitor}};

  util::Table t({"algo", "topology", "rounds", "S vs full %", "weight %",
                 "blocking", "truncated/seeds"});
  for (const AlgoArm& arm : arms) {
    for (const auto* topology : {"er", "ba", "ws"}) {
      // Unbudgeted references, one per seed (quality ratios are per-seed so
      // a hard seed doesn't skew the sweep).
      std::vector<double> ref_sat, ref_weight;
      for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
        auto inst = bench::Instance::make(topology, n, degree, quota, seed * 7 + 3);
        core::SolveOptions opt;
        opt.seed = seed;
        opt.schedule = sim::Schedule::kFifo;
        const auto r = core::solve(*inst->profile, arm.algo, opt,
                                   inst->weights.get());
        ref_sat.push_back(r.satisfaction);
        ref_weight.push_back(r.weight);
      }
      for (const std::size_t budget_rounds : rounds) {
        util::StreamingStats sat_pct, weight_pct, blocking;
        std::size_t truncated_seeds = 0;
        std::vector<double> samples_ms;
        for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
          auto inst = bench::Instance::make(topology, n, degree, quota, seed * 7 + 3);
          core::SolveOptions opt;
          opt.seed = seed;
          opt.schedule = sim::Schedule::kFifo;
          opt.budget.max_rounds = budget_rounds;
          util::WallTimer timer;
          const auto r = core::solve(*inst->profile, arm.algo, opt,
                                     inst->weights.get());
          samples_ms.push_back(timer.millis());
          sat_pct.add(100.0 * r.satisfaction / ref_sat[seed - 1]);
          weight_pct.add(100.0 * r.weight / ref_weight[seed - 1]);
          blocking.add(static_cast<double>(
              matching::count_blocking_edges(r.matching, *inst->weights)));
          if (r.truncated) ++truncated_seeds;
        }
        t.row()
            .cell(arm.name)
            .cell(topology)
            .cell(std::int64_t{static_cast<std::int64_t>(budget_rounds)})
            .cell(sat_pct.mean(), 1)
            .cell(weight_pct.mean(), 1)
            .cell(blocking.mean(), 0)
            .cell(std::to_string(truncated_seeds) + "/" +
                  std::to_string(bench::seeds(5)));
        report.add("anytime_quality",
                   {{"algo", arm.name},
                    {"topology", topology},
                    {"rounds", std::to_string(budget_rounds)}},
                   samples_ms);
      }
    }
  }
  t.print("Round-budget sweep (n per arm above, avg degree 12, b=3; quality "
          "relative to the unbudgeted fixed point of the same seed):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);
  (void)env;
  overmatch::bench::print_header(
      "E23", "Anytime quality vs. round budget (DESIGN.md §14)",
      "Σ S_i and approximation ratio vs. max_rounds for budgeted LID and\n"
      "b-suitor; blocking edges measure the distance from convergence.");
  overmatch::bench::JsonReport report("anytime");
  overmatch::rounds_sweep(report);
  report.write();
  return 0;
}
