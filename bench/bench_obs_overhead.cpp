// E19 — observability overhead on the E18 solve phase.
//
// The obs:: recording discipline (hot loops accumulate into locals, flush
// once per run; disengaged handles for null registries) promises that
// metrics cost nothing measurable on the solve phase. This bench holds the
// library to that promise: it times the E18 solve-phase matchers
// (lic_local and parallel_local_dominant) with metrics disabled (null
// registry — the no-op mode) and enabled (attached registry), interleaving
// the two arms, and asserts the enabled arm stays within the documented
// 2% bound of the disabled arm. Since the enabled arm does strictly more
// work than the disabled one, the bound covers the no-op mode a fortiori.
//
// Min-of-reps is compared (the minimum is the standard noise-robust
// estimator for same-work timing comparisons), plus a small absolute guard
// so sub-millisecond smoke runs don't fail on scheduler jitter.
#include <thread>

#include "bench/bench_common.hpp"

#include "matching/lic.hpp"
#include "matching/parallel_local.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace overmatch;
using bench::Instance;

constexpr double kOverheadBound = 0.02;  // documented disabled-mode bound
constexpr double kAbsoluteGuardMs = 0.5; // jitter floor for tiny instances

double min_of(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

struct Arm {
  double disabled_ms = 0.0;
  double enabled_ms = 0.0;
};

/// Times `run(registry)` with a null and an attached registry, interleaved
/// (A/B/A/B...) so drift hits both arms equally.
template <typename F>
Arm measure(std::size_t reps, obs::Registry& registry, F&& run) {
  std::vector<double> disabled, enabled;
  disabled.reserve(reps);
  enabled.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    {
      util::WallTimer t;
      run(static_cast<obs::Registry*>(nullptr));
      disabled.push_back(t.millis());
    }
    {
      util::WallTimer t;
      run(&registry);
      enabled.push_back(t.millis());
    }
  }
  return Arm{min_of(disabled), min_of(enabled)};
}

void report(bench::JsonReport& json, const char* name, const Arm& arm,
            std::size_t n, std::size_t threads) {
  const double overhead =
      arm.disabled_ms > 0.0 ? arm.enabled_ms / arm.disabled_ms - 1.0 : 0.0;
  std::printf("| %-16s | %8.3f | %8.3f | %+7.2f%% |\n", name, arm.disabled_ms,
              arm.enabled_ms, overhead * 100.0);
  json.add(std::string(name) + "/disabled", {{"n", std::to_string(n)}},
           {arm.disabled_ms}, threads);
  json.add(std::string(name) + "/enabled", {{"n", std::to_string(n)}},
           {arm.enabled_ms}, threads);
  OM_CHECK_MSG(arm.enabled_ms <=
                   arm.disabled_ms * (1.0 + kOverheadBound) + kAbsoluteGuardMs,
               "observability overhead exceeds the documented 2% bound");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Env env(argc, argv);
  bench::print_header(
      "E19", "observability overhead",
      "solve-phase matchers with metrics disabled (null registry) vs enabled;\n"
      "asserts the documented <2% overhead bound (+0.5 ms jitter guard)");

  const std::size_t n = env.size(20000, 2000);
  const std::size_t reps = env.smoke() ? 5 : 15;
  const std::size_t threads = 4;
  const auto inst = Instance::make("er", n, 8.0, 3, /*seed=*/42);
  const auto& w = *inst->weights;
  const auto& quotas = inst->profile->quotas();

  std::printf("n=%zu, %zu edges, %zu reps (min compared)\n\n", n,
              inst->g.num_edges(), reps);
  std::printf("| matcher          | off (ms) | on (ms)  | overhead |\n");
  std::printf("|------------------|----------|----------|----------|\n");

  bench::JsonReport json("obs_overhead");
  json.set_env("threads_max", std::to_string(threads));
  json.set_env("hardware_concurrency",
               std::to_string(std::thread::hardware_concurrency()));
  obs::Registry registry;

  const Arm lic = measure(reps, registry, [&](obs::Registry* r) {
    (void)matching::lic_local(w, quotas, /*scan_seed=*/1, r);
  });
  report(json, "lic-local", lic, n, 1);

  util::ThreadPool pool(threads);
  const Arm par = measure(reps, registry, [&](obs::Registry* r) {
    (void)matching::parallel_local_dominant(w, quotas, pool, r);
  });
  report(json, "parallel", par, n, threads);

  json.write();
  return 0;
}
