// E10 — Ablation: the eq.-9 weight design (sum of the two static satisfaction
// increments) against alternatives.
//
// The metric that matters is the *true* total satisfaction (eq. 1) the
// resulting matching achieves. eq. 9 is the only design with a proven bound
// (Theorem 1). Empirically, the asymmetry-punishing designs (min, product)
// lose satisfaction, while the quota-blind rank-sum design can slightly beat
// eq. 9 on mixed-quota instances (its missing 1/b factor stops high-quota
// nodes from dominating the greedy order) — a guarantee-vs-heuristic
// trade-off the table makes visible.
#include "bench/bench_common.hpp"
#include "core/solvers.hpp"
#include "matching/metrics.hpp"

namespace overmatch {
namespace {

void ablation_table() {
  util::Table t({"weight design", "total satisfaction", "S mean/node",
                 "modified S̄", "blocking pairs", "edges"});
  const char* designs[] = {"paper", "min", "product", "ranksum"};
  const std::size_t seeds = bench::seeds(10);
  const std::size_t n = 96;
  for (const char* design : designs) {
    util::StreamingStats sat;
    util::StreamingStats sbar;
    util::StreamingStats blocking;
    util::StreamingStats edges;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      auto inst = bench::Instance::make_mixed_quotas("er", n, 8.0, 4, seed * 71 + 7);
      const auto w = prefs::weights_by_name(design, *inst->profile);
      const auto r =
          core::solve(*inst->profile, core::Algorithm::kLicGlobal, {}, &w);
      sat.add(r.satisfaction);
      sbar.add(r.satisfaction_modified);
      blocking.add(static_cast<double>(
          matching::count_blocking_pairs(*inst->profile, r.matching)));
      edges.add(static_cast<double>(r.matching.size()));
    }
    t.row()
        .cell(design)
        .cell(sat.mean(), 4)
        .cell(sat.mean() / static_cast<double>(n), 4)
        .cell(sbar.mean(), 4)
        .cell(blocking.mean(), 1)
        .cell(edges.mean(), 1);
  }
  t.print("Weight-design ablation (ER n=96, mixed quotas ≤ 4, 10 seeds, greedy):");
}

void random_weights_floor() {
  // Sanity floor: ignoring preferences entirely (random weights) shows how
  // much satisfaction the preference-aware designs actually buy.
  util::StreamingStats sat_random;
  util::StreamingStats sat_paper;
  const std::size_t seeds = bench::seeds(10);
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    auto inst = bench::Instance::make_mixed_quotas("er", 96, 8.0, 4, seed * 73 + 1);
    util::Rng rng(seed);
    const auto wr = prefs::random_weights(inst->g, rng);
    sat_random.add(
        core::solve(*inst->profile, core::Algorithm::kLicGlobal, {}, &wr)
            .satisfaction);
    sat_paper.add(core::solve(*inst->profile, core::Algorithm::kLicGlobal)
                      .satisfaction);
  }
  util::Table t({"weights", "total satisfaction (mean)"});
  t.row().cell("random (preference-blind)").cell(sat_random.mean(), 4);
  t.row().cell("paper eq. 9").cell(sat_paper.mean(), 4);
  t.print("Preference-blind floor:");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E10", "Design-choice ablation",
      "The eq.-9 edge-weight design vs. min / product / rank-sum / random.");
  overmatch::ablation_table();
  overmatch::random_weights_floor();
  return 0;
}
