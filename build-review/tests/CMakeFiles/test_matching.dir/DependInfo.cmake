
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/matching/test_baselines.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_baselines.cpp.o.d"
  "/root/repo/tests/matching/test_bounds.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_bounds.cpp.o.d"
  "/root/repo/tests/matching/test_bsuitor.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_bsuitor.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_bsuitor.cpp.o.d"
  "/root/repo/tests/matching/test_cardinality.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_cardinality.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_cardinality.cpp.o.d"
  "/root/repo/tests/matching/test_exact.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_exact.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_exact.cpp.o.d"
  "/root/repo/tests/matching/test_fuzz_model.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_fuzz_model.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_fuzz_model.cpp.o.d"
  "/root/repo/tests/matching/test_lic.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_lic.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_lic.cpp.o.d"
  "/root/repo/tests/matching/test_lid.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_lid.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_lid.cpp.o.d"
  "/root/repo/tests/matching/test_lid_lossy.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_lid_lossy.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_lid_lossy.cpp.o.d"
  "/root/repo/tests/matching/test_local_search.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_local_search.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_local_search.cpp.o.d"
  "/root/repo/tests/matching/test_matching.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_matching.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_matching.cpp.o.d"
  "/root/repo/tests/matching/test_parallel.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_parallel.cpp.o.d"
  "/root/repo/tests/matching/test_verify.cpp" "tests/CMakeFiles/test_matching.dir/matching/test_verify.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/test_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/overmatch_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/overlay/CMakeFiles/overmatch_overlay.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matching/CMakeFiles/overmatch_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/overmatch_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/prefs/CMakeFiles/overmatch_prefs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/overmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/overmatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
