file(REMOVE_RECURSE
  "CMakeFiles/test_matching.dir/matching/test_baselines.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_baselines.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_bounds.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_bounds.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_bsuitor.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_bsuitor.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_cardinality.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_cardinality.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_exact.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_exact.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_fuzz_model.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_fuzz_model.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_lic.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_lic.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_lid.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_lid.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_lid_lossy.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_lid_lossy.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_local_search.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_local_search.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_matching.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_matching.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_parallel.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_parallel.cpp.o.d"
  "CMakeFiles/test_matching.dir/matching/test_verify.cpp.o"
  "CMakeFiles/test_matching.dir/matching/test_verify.cpp.o.d"
  "test_matching"
  "test_matching.pdb"
  "test_matching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
