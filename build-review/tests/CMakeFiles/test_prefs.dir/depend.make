# Empty dependencies file for test_prefs.
# This may be replaced when dependencies are built.
