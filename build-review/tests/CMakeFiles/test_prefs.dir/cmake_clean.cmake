file(REMOVE_RECURSE
  "CMakeFiles/test_prefs.dir/prefs/test_cycles.cpp.o"
  "CMakeFiles/test_prefs.dir/prefs/test_cycles.cpp.o.d"
  "CMakeFiles/test_prefs.dir/prefs/test_preference_profile.cpp.o"
  "CMakeFiles/test_prefs.dir/prefs/test_preference_profile.cpp.o.d"
  "CMakeFiles/test_prefs.dir/prefs/test_satisfaction.cpp.o"
  "CMakeFiles/test_prefs.dir/prefs/test_satisfaction.cpp.o.d"
  "CMakeFiles/test_prefs.dir/prefs/test_truncation.cpp.o"
  "CMakeFiles/test_prefs.dir/prefs/test_truncation.cpp.o.d"
  "CMakeFiles/test_prefs.dir/prefs/test_weights.cpp.o"
  "CMakeFiles/test_prefs.dir/prefs/test_weights.cpp.o.d"
  "test_prefs"
  "test_prefs.pdb"
  "test_prefs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
