
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prefs/test_cycles.cpp" "tests/CMakeFiles/test_prefs.dir/prefs/test_cycles.cpp.o" "gcc" "tests/CMakeFiles/test_prefs.dir/prefs/test_cycles.cpp.o.d"
  "/root/repo/tests/prefs/test_preference_profile.cpp" "tests/CMakeFiles/test_prefs.dir/prefs/test_preference_profile.cpp.o" "gcc" "tests/CMakeFiles/test_prefs.dir/prefs/test_preference_profile.cpp.o.d"
  "/root/repo/tests/prefs/test_satisfaction.cpp" "tests/CMakeFiles/test_prefs.dir/prefs/test_satisfaction.cpp.o" "gcc" "tests/CMakeFiles/test_prefs.dir/prefs/test_satisfaction.cpp.o.d"
  "/root/repo/tests/prefs/test_truncation.cpp" "tests/CMakeFiles/test_prefs.dir/prefs/test_truncation.cpp.o" "gcc" "tests/CMakeFiles/test_prefs.dir/prefs/test_truncation.cpp.o.d"
  "/root/repo/tests/prefs/test_weights.cpp" "tests/CMakeFiles/test_prefs.dir/prefs/test_weights.cpp.o" "gcc" "tests/CMakeFiles/test_prefs.dir/prefs/test_weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/overmatch_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/overlay/CMakeFiles/overmatch_overlay.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matching/CMakeFiles/overmatch_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/overmatch_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/prefs/CMakeFiles/overmatch_prefs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/overmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/overmatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
