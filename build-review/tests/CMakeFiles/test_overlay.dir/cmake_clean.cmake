file(REMOVE_RECURSE
  "CMakeFiles/test_overlay.dir/overlay/test_builder.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_builder.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_churn.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_churn.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_discovery.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_discovery.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_metrics.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_metrics.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_peer.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_peer.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/test_quality.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/test_quality.cpp.o.d"
  "test_overlay"
  "test_overlay.pdb"
  "test_overlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
