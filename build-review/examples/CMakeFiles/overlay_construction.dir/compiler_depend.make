# Empty compiler generated dependencies file for overlay_construction.
# This may be replaced when dependencies are built.
