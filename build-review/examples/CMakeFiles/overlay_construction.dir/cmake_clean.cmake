file(REMOVE_RECURSE
  "CMakeFiles/overlay_construction.dir/overlay_construction.cpp.o"
  "CMakeFiles/overlay_construction.dir/overlay_construction.cpp.o.d"
  "overlay_construction"
  "overlay_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
