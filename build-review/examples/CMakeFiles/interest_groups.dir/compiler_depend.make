# Empty compiler generated dependencies file for interest_groups.
# This may be replaced when dependencies are built.
