file(REMOVE_RECURSE
  "CMakeFiles/interest_groups.dir/interest_groups.cpp.o"
  "CMakeFiles/interest_groups.dir/interest_groups.cpp.o.d"
  "interest_groups"
  "interest_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
