# Empty dependencies file for churn_adaptation.
# This may be replaced when dependencies are built.
