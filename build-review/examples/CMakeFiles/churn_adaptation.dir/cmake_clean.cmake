file(REMOVE_RECURSE
  "CMakeFiles/churn_adaptation.dir/churn_adaptation.cpp.o"
  "CMakeFiles/churn_adaptation.dir/churn_adaptation.cpp.o.d"
  "churn_adaptation"
  "churn_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
