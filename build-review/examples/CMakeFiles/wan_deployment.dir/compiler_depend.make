# Empty compiler generated dependencies file for wan_deployment.
# This may be replaced when dependencies are built.
