file(REMOVE_RECURSE
  "CMakeFiles/wan_deployment.dir/wan_deployment.cpp.o"
  "CMakeFiles/wan_deployment.dir/wan_deployment.cpp.o.d"
  "wan_deployment"
  "wan_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
