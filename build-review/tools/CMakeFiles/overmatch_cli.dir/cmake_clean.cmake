file(REMOVE_RECURSE
  "CMakeFiles/overmatch_cli.dir/overmatch_cli.cpp.o"
  "CMakeFiles/overmatch_cli.dir/overmatch_cli.cpp.o.d"
  "overmatch_cli"
  "overmatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
