# Empty dependencies file for overmatch_cli.
# This may be replaced when dependencies are built.
