file(REMOVE_RECURSE
  "CMakeFiles/overmatch_util.dir/flags.cpp.o"
  "CMakeFiles/overmatch_util.dir/flags.cpp.o.d"
  "CMakeFiles/overmatch_util.dir/rng.cpp.o"
  "CMakeFiles/overmatch_util.dir/rng.cpp.o.d"
  "CMakeFiles/overmatch_util.dir/stats.cpp.o"
  "CMakeFiles/overmatch_util.dir/stats.cpp.o.d"
  "CMakeFiles/overmatch_util.dir/table.cpp.o"
  "CMakeFiles/overmatch_util.dir/table.cpp.o.d"
  "CMakeFiles/overmatch_util.dir/thread_pool.cpp.o"
  "CMakeFiles/overmatch_util.dir/thread_pool.cpp.o.d"
  "libovermatch_util.a"
  "libovermatch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
