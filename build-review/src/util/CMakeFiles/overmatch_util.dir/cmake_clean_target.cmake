file(REMOVE_RECURSE
  "libovermatch_util.a"
)
