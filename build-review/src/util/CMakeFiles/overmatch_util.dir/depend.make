# Empty dependencies file for overmatch_util.
# This may be replaced when dependencies are built.
