# Empty dependencies file for overmatch_prefs.
# This may be replaced when dependencies are built.
