file(REMOVE_RECURSE
  "CMakeFiles/overmatch_prefs.dir/cycles.cpp.o"
  "CMakeFiles/overmatch_prefs.dir/cycles.cpp.o.d"
  "CMakeFiles/overmatch_prefs.dir/preference_profile.cpp.o"
  "CMakeFiles/overmatch_prefs.dir/preference_profile.cpp.o.d"
  "CMakeFiles/overmatch_prefs.dir/satisfaction.cpp.o"
  "CMakeFiles/overmatch_prefs.dir/satisfaction.cpp.o.d"
  "CMakeFiles/overmatch_prefs.dir/truncation.cpp.o"
  "CMakeFiles/overmatch_prefs.dir/truncation.cpp.o.d"
  "CMakeFiles/overmatch_prefs.dir/weights.cpp.o"
  "CMakeFiles/overmatch_prefs.dir/weights.cpp.o.d"
  "libovermatch_prefs.a"
  "libovermatch_prefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_prefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
