
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefs/cycles.cpp" "src/prefs/CMakeFiles/overmatch_prefs.dir/cycles.cpp.o" "gcc" "src/prefs/CMakeFiles/overmatch_prefs.dir/cycles.cpp.o.d"
  "/root/repo/src/prefs/preference_profile.cpp" "src/prefs/CMakeFiles/overmatch_prefs.dir/preference_profile.cpp.o" "gcc" "src/prefs/CMakeFiles/overmatch_prefs.dir/preference_profile.cpp.o.d"
  "/root/repo/src/prefs/satisfaction.cpp" "src/prefs/CMakeFiles/overmatch_prefs.dir/satisfaction.cpp.o" "gcc" "src/prefs/CMakeFiles/overmatch_prefs.dir/satisfaction.cpp.o.d"
  "/root/repo/src/prefs/truncation.cpp" "src/prefs/CMakeFiles/overmatch_prefs.dir/truncation.cpp.o" "gcc" "src/prefs/CMakeFiles/overmatch_prefs.dir/truncation.cpp.o.d"
  "/root/repo/src/prefs/weights.cpp" "src/prefs/CMakeFiles/overmatch_prefs.dir/weights.cpp.o" "gcc" "src/prefs/CMakeFiles/overmatch_prefs.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/overmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/overmatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
