file(REMOVE_RECURSE
  "libovermatch_prefs.a"
)
