# Empty compiler generated dependencies file for overmatch_overlay.
# This may be replaced when dependencies are built.
