file(REMOVE_RECURSE
  "libovermatch_overlay.a"
)
