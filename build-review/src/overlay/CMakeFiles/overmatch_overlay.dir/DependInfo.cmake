
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/builder.cpp" "src/overlay/CMakeFiles/overmatch_overlay.dir/builder.cpp.o" "gcc" "src/overlay/CMakeFiles/overmatch_overlay.dir/builder.cpp.o.d"
  "/root/repo/src/overlay/churn.cpp" "src/overlay/CMakeFiles/overmatch_overlay.dir/churn.cpp.o" "gcc" "src/overlay/CMakeFiles/overmatch_overlay.dir/churn.cpp.o.d"
  "/root/repo/src/overlay/discovery.cpp" "src/overlay/CMakeFiles/overmatch_overlay.dir/discovery.cpp.o" "gcc" "src/overlay/CMakeFiles/overmatch_overlay.dir/discovery.cpp.o.d"
  "/root/repo/src/overlay/metrics.cpp" "src/overlay/CMakeFiles/overmatch_overlay.dir/metrics.cpp.o" "gcc" "src/overlay/CMakeFiles/overmatch_overlay.dir/metrics.cpp.o.d"
  "/root/repo/src/overlay/peer.cpp" "src/overlay/CMakeFiles/overmatch_overlay.dir/peer.cpp.o" "gcc" "src/overlay/CMakeFiles/overmatch_overlay.dir/peer.cpp.o.d"
  "/root/repo/src/overlay/quality.cpp" "src/overlay/CMakeFiles/overmatch_overlay.dir/quality.cpp.o" "gcc" "src/overlay/CMakeFiles/overmatch_overlay.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/matching/CMakeFiles/overmatch_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/prefs/CMakeFiles/overmatch_prefs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/overmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/overmatch_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/overmatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
