file(REMOVE_RECURSE
  "CMakeFiles/overmatch_overlay.dir/builder.cpp.o"
  "CMakeFiles/overmatch_overlay.dir/builder.cpp.o.d"
  "CMakeFiles/overmatch_overlay.dir/churn.cpp.o"
  "CMakeFiles/overmatch_overlay.dir/churn.cpp.o.d"
  "CMakeFiles/overmatch_overlay.dir/discovery.cpp.o"
  "CMakeFiles/overmatch_overlay.dir/discovery.cpp.o.d"
  "CMakeFiles/overmatch_overlay.dir/metrics.cpp.o"
  "CMakeFiles/overmatch_overlay.dir/metrics.cpp.o.d"
  "CMakeFiles/overmatch_overlay.dir/peer.cpp.o"
  "CMakeFiles/overmatch_overlay.dir/peer.cpp.o.d"
  "CMakeFiles/overmatch_overlay.dir/quality.cpp.o"
  "CMakeFiles/overmatch_overlay.dir/quality.cpp.o.d"
  "libovermatch_overlay.a"
  "libovermatch_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
