# Empty dependencies file for overmatch_core.
# This may be replaced when dependencies are built.
