file(REMOVE_RECURSE
  "libovermatch_core.a"
)
