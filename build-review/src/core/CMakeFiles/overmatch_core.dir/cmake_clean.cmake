file(REMOVE_RECURSE
  "CMakeFiles/overmatch_core.dir/certificates.cpp.o"
  "CMakeFiles/overmatch_core.dir/certificates.cpp.o.d"
  "CMakeFiles/overmatch_core.dir/solvers.cpp.o"
  "CMakeFiles/overmatch_core.dir/solvers.cpp.o.d"
  "libovermatch_core.a"
  "libovermatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
