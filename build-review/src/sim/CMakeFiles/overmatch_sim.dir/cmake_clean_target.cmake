file(REMOVE_RECURSE
  "libovermatch_sim.a"
)
