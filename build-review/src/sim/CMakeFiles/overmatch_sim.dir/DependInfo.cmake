
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/overmatch_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/overmatch_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/reliable.cpp" "src/sim/CMakeFiles/overmatch_sim.dir/reliable.cpp.o" "gcc" "src/sim/CMakeFiles/overmatch_sim.dir/reliable.cpp.o.d"
  "/root/repo/src/sim/threaded_runtime.cpp" "src/sim/CMakeFiles/overmatch_sim.dir/threaded_runtime.cpp.o" "gcc" "src/sim/CMakeFiles/overmatch_sim.dir/threaded_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/overmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/overmatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
