file(REMOVE_RECURSE
  "CMakeFiles/overmatch_sim.dir/event_sim.cpp.o"
  "CMakeFiles/overmatch_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/overmatch_sim.dir/reliable.cpp.o"
  "CMakeFiles/overmatch_sim.dir/reliable.cpp.o.d"
  "CMakeFiles/overmatch_sim.dir/threaded_runtime.cpp.o"
  "CMakeFiles/overmatch_sim.dir/threaded_runtime.cpp.o.d"
  "libovermatch_sim.a"
  "libovermatch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
