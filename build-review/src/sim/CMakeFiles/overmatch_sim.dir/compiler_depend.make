# Empty compiler generated dependencies file for overmatch_sim.
# This may be replaced when dependencies are built.
