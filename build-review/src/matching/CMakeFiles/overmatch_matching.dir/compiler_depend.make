# Empty compiler generated dependencies file for overmatch_matching.
# This may be replaced when dependencies are built.
