file(REMOVE_RECURSE
  "libovermatch_matching.a"
)
