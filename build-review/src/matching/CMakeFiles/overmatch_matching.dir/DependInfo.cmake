
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/baselines.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/baselines.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/baselines.cpp.o.d"
  "/root/repo/src/matching/bounds.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/bounds.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/bounds.cpp.o.d"
  "/root/repo/src/matching/bsuitor.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/bsuitor.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/bsuitor.cpp.o.d"
  "/root/repo/src/matching/cardinality.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/cardinality.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/cardinality.cpp.o.d"
  "/root/repo/src/matching/dp_matcher.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/dp_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/dp_matcher.cpp.o.d"
  "/root/repo/src/matching/exact.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/exact.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/exact.cpp.o.d"
  "/root/repo/src/matching/lic.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/lic.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/lic.cpp.o.d"
  "/root/repo/src/matching/lid.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/lid.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/lid.cpp.o.d"
  "/root/repo/src/matching/local_search.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/local_search.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/local_search.cpp.o.d"
  "/root/repo/src/matching/matching.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/matching.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/matching.cpp.o.d"
  "/root/repo/src/matching/metrics.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/metrics.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/metrics.cpp.o.d"
  "/root/repo/src/matching/parallel_local.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/parallel_local.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/parallel_local.cpp.o.d"
  "/root/repo/src/matching/verify.cpp" "src/matching/CMakeFiles/overmatch_matching.dir/verify.cpp.o" "gcc" "src/matching/CMakeFiles/overmatch_matching.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/overmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/prefs/CMakeFiles/overmatch_prefs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/overmatch_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/overmatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
