file(REMOVE_RECURSE
  "CMakeFiles/overmatch_matching.dir/baselines.cpp.o"
  "CMakeFiles/overmatch_matching.dir/baselines.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/bounds.cpp.o"
  "CMakeFiles/overmatch_matching.dir/bounds.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/bsuitor.cpp.o"
  "CMakeFiles/overmatch_matching.dir/bsuitor.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/cardinality.cpp.o"
  "CMakeFiles/overmatch_matching.dir/cardinality.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/dp_matcher.cpp.o"
  "CMakeFiles/overmatch_matching.dir/dp_matcher.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/exact.cpp.o"
  "CMakeFiles/overmatch_matching.dir/exact.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/lic.cpp.o"
  "CMakeFiles/overmatch_matching.dir/lic.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/lid.cpp.o"
  "CMakeFiles/overmatch_matching.dir/lid.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/local_search.cpp.o"
  "CMakeFiles/overmatch_matching.dir/local_search.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/matching.cpp.o"
  "CMakeFiles/overmatch_matching.dir/matching.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/metrics.cpp.o"
  "CMakeFiles/overmatch_matching.dir/metrics.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/parallel_local.cpp.o"
  "CMakeFiles/overmatch_matching.dir/parallel_local.cpp.o.d"
  "CMakeFiles/overmatch_matching.dir/verify.cpp.o"
  "CMakeFiles/overmatch_matching.dir/verify.cpp.o.d"
  "libovermatch_matching.a"
  "libovermatch_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
