# Empty compiler generated dependencies file for overmatch_graph.
# This may be replaced when dependencies are built.
