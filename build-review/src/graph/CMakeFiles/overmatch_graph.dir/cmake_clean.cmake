file(REMOVE_RECURSE
  "CMakeFiles/overmatch_graph.dir/generators.cpp.o"
  "CMakeFiles/overmatch_graph.dir/generators.cpp.o.d"
  "CMakeFiles/overmatch_graph.dir/graph.cpp.o"
  "CMakeFiles/overmatch_graph.dir/graph.cpp.o.d"
  "CMakeFiles/overmatch_graph.dir/io.cpp.o"
  "CMakeFiles/overmatch_graph.dir/io.cpp.o.d"
  "CMakeFiles/overmatch_graph.dir/properties.cpp.o"
  "CMakeFiles/overmatch_graph.dir/properties.cpp.o.d"
  "libovermatch_graph.a"
  "libovermatch_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overmatch_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
