file(REMOVE_RECURSE
  "libovermatch_graph.a"
)
