# Empty dependencies file for bench_fig1_satisfaction.
# This may be replaced when dependencies are built.
