file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_satisfaction.dir/bench_fig1_satisfaction.cpp.o"
  "CMakeFiles/bench_fig1_satisfaction.dir/bench_fig1_satisfaction.cpp.o.d"
  "bench_fig1_satisfaction"
  "bench_fig1_satisfaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_satisfaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
