file(REMOVE_RECURSE
  "CMakeFiles/bench_lid_equals_lic.dir/bench_lid_equals_lic.cpp.o"
  "CMakeFiles/bench_lid_equals_lic.dir/bench_lid_equals_lic.cpp.o.d"
  "bench_lid_equals_lic"
  "bench_lid_equals_lic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lid_equals_lic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
