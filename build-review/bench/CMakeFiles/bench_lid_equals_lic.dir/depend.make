# Empty dependencies file for bench_lid_equals_lic.
# This may be replaced when dependencies are built.
