# Empty compiler generated dependencies file for bench_lemma1_static_ratio.
# This may be replaced when dependencies are built.
