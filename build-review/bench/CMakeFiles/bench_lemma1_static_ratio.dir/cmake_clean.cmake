file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma1_static_ratio.dir/bench_lemma1_static_ratio.cpp.o"
  "CMakeFiles/bench_lemma1_static_ratio.dir/bench_lemma1_static_ratio.cpp.o.d"
  "bench_lemma1_static_ratio"
  "bench_lemma1_static_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma1_static_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
