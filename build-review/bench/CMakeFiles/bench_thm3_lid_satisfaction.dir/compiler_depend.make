# Empty compiler generated dependencies file for bench_thm3_lid_satisfaction.
# This may be replaced when dependencies are built.
