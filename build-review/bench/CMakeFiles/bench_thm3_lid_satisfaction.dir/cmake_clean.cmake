file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_lid_satisfaction.dir/bench_thm3_lid_satisfaction.cpp.o"
  "CMakeFiles/bench_thm3_lid_satisfaction.dir/bench_thm3_lid_satisfaction.cpp.o.d"
  "bench_thm3_lid_satisfaction"
  "bench_thm3_lid_satisfaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_lid_satisfaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
