file(REMOVE_RECURSE
  "CMakeFiles/bench_discovery.dir/bench_discovery.cpp.o"
  "CMakeFiles/bench_discovery.dir/bench_discovery.cpp.o.d"
  "bench_discovery"
  "bench_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
