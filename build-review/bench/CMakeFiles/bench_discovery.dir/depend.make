# Empty dependencies file for bench_discovery.
# This may be replaced when dependencies are built.
