
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_discovery.cpp" "bench/CMakeFiles/bench_discovery.dir/bench_discovery.cpp.o" "gcc" "bench/CMakeFiles/bench_discovery.dir/bench_discovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/overmatch_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/overlay/CMakeFiles/overmatch_overlay.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matching/CMakeFiles/overmatch_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/overmatch_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/prefs/CMakeFiles/overmatch_prefs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/overmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/overmatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
