# Empty dependencies file for bench_truncation.
# This may be replaced when dependencies are built.
