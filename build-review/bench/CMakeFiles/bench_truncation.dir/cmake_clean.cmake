file(REMOVE_RECURSE
  "CMakeFiles/bench_truncation.dir/bench_truncation.cpp.o"
  "CMakeFiles/bench_truncation.dir/bench_truncation.cpp.o.d"
  "bench_truncation"
  "bench_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
