# Empty dependencies file for bench_lossy_network.
# This may be replaced when dependencies are built.
