file(REMOVE_RECURSE
  "CMakeFiles/bench_lossy_network.dir/bench_lossy_network.cpp.o"
  "CMakeFiles/bench_lossy_network.dir/bench_lossy_network.cpp.o.d"
  "bench_lossy_network"
  "bench_lossy_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lossy_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
