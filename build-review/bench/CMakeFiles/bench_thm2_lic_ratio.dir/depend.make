# Empty dependencies file for bench_thm2_lic_ratio.
# This may be replaced when dependencies are built.
