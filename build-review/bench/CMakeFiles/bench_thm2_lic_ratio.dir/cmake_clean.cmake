file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_lic_ratio.dir/bench_thm2_lic_ratio.cpp.o"
  "CMakeFiles/bench_thm2_lic_ratio.dir/bench_thm2_lic_ratio.cpp.o.d"
  "bench_thm2_lic_ratio"
  "bench_thm2_lic_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_lic_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
